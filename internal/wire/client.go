package wire

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/nids"
)

// Client-side transport errors.
var (
	// ErrUnavailable means no healthy wire connection exists and one could
	// not be established right now (dial failed, or the reconnect backoff
	// window is still open). Retryable; eligible for HTTP fallback.
	ErrUnavailable = errors.New("wire: no connection available")
	// ErrBreakerOpen means the client's circuit breaker fast-failed the
	// call without touching the network.
	ErrBreakerOpen = errors.New("wire: circuit breaker open")
	// ErrTimeout means the request was written but no response arrived
	// within the client timeout.
	ErrTimeout = errors.New("wire: request timed out")
	// ErrClosed means the connection died while the request was in flight.
	ErrClosed = errors.New("wire: connection closed")
	// errVerdictCount means the server answered with a verdict count that
	// does not match the request's record count.
	errVerdictCount = errors.New("wire: verdict count mismatch")
)

// Breaker is the circuit-breaker surface the client needs; *serve.Breaker
// satisfies it, so both transports share one breaker implementation and
// its closed/open/half-open semantics. Every Allow() == true is paired
// with exactly one Record(outcome).
type Breaker interface {
	Allow() bool
	Record(ok bool)
}

// Scorer is the scoring surface of serve.Client — the HTTP fallback's
// shape. A *serve.Client satisfies it directly.
type Scorer interface {
	Score(recs []*data.Record) ([]nids.Verdict, string, error)
}

// Client defaults.
const (
	// DefaultTimeout bounds each scoring call (and is sent to the server
	// as the request's deadline hint, so the server sheds what the client
	// has already given up on). Matches serve.DefaultClientTimeout.
	DefaultTimeout = 10 * time.Second
	// DefaultConns is how many TCP connections a client multiplexes over.
	DefaultConns = 2
	// defaultDialTimeout bounds connection establishment + handshake.
	defaultDialTimeout = 3 * time.Second
	// defaultRetryBase seeds the reconnect/retry backoff, as in serve.Client.
	defaultRetryBase = 50 * time.Millisecond
	// maxBackoff caps the exponential backoff, as in serve.Client.
	maxBackoff = 2 * time.Second
	// connBufSize sizes each connection's buffered reader/writer.
	connBufSize = 64 << 10
)

// Client is the wire transport's scoring client: persistent TCP
// connections to a pelican-serve wire listener, pipelined requests
// correlated by id, out-of-order responses, reconnect with jittered
// exponential backoff, optional circuit breaking, and optional fallback
// to the HTTP plane. It implements nids.BatchDetector, so anything that
// scores through serve.RemoteDetector can score through the wire
// unchanged. Safe for concurrent use; calls from many goroutines
// multiplex over the connection pool.
type Client struct {
	// Addr is the wire listener's host:port.
	Addr string
	// Conns is the connection pool size. 0 means DefaultConns.
	Conns int
	// Tag pins scoring to one registry slot ("" = live), as the HTTP
	// plane's ?tag= does.
	Tag string
	// Timeout bounds each call and is the deadline hint sent in every
	// request frame. 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxAttempts caps tries per call (first + retries). 0 means 3.
	MaxAttempts int
	// RetryBase seeds the retry/reconnect backoff. 0 means 50ms.
	RetryBase time.Duration
	// Breaker, when non-nil, guards every call (pass a *serve.Breaker).
	// Transport failures count against it; server shed answers (429/503)
	// do not — same policy as the HTTP client.
	Breaker Breaker
	// Fallback, when non-nil, answers calls the wire transport cannot
	// deliver (dial failures, open breaker, dead connections — never
	// deliberate server answers like shedding). Pass a *serve.Client
	// pointed at the same server's HTTP plane.
	Fallback Scorer

	mu     sync.Mutex // guards conns slice + rr; never held across I/O
	conns  []*wireConn
	rr     int
	nextID atomic.Uint64
	// dialing serializes reconnects without holding a lock across the
	// dial; nextDial (unix nanos) is the backoff gate, dialFails the
	// consecutive-failure count behind it.
	dialing   atomic.Bool
	nextDial  atomic.Int64
	dialFails atomic.Int64

	draining  atomic.Bool // a GoAway has been seen
	errs      atomic.Int64
	fallbacks atomic.Int64
	framesOut atomic.Int64
	framesIn  atomic.Int64
	bytesOut  atomic.Int64
	bytesIn   atomic.Int64

	version atomic.Value // string: last model version that answered
}

var _ nids.BatchDetector = (*Client)(nil)

// NewClient builds a wire client for the listener at addr. Request ids
// start at a random point so traces from concurrent clients don't collide.
func NewClient(addr string) *Client {
	c := &Client{Addr: addr}
	c.nextID.Store(rand.Uint64() << 16)
	return c
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) poolSize() int {
	if c.Conns > 0 {
		return c.Conns
	}
	return DefaultConns
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return defaultRetryBase
}

// backoffFor mirrors serve.Client's retry delay: base doubled per attempt
// with ±50% jitter, capped at maxBackoff.
func backoffFor(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Draining reports whether any connection has received a GoAway — the
// server is shutting down and new requests should be treated as shed,
// not as failures.
func (c *Client) Draining() bool { return c.draining.Load() }

// Errors returns how many scoring calls have failed (after retries and
// fallback).
func (c *Client) Errors() int64 { return c.errs.Load() }

// Fallbacks returns how many calls were answered by the HTTP fallback.
func (c *Client) Fallbacks() int64 { return c.fallbacks.Load() }

// Stats returns cumulative frame/byte counters (out = client→server).
func (c *Client) Stats() (framesOut, framesIn, bytesOut, bytesIn int64) {
	return c.framesOut.Load(), c.framesIn.Load(), c.bytesOut.Load(), c.bytesIn.Load()
}

// ModelVersion returns the version that answered the most recent
// successful call ("" before the first).
func (c *Client) ModelVersion() string {
	v, _ := c.version.Load().(string)
	return v
}

// Connect pre-establishes the full connection pool (loadgen warms the
// pool before the measurement window so dial cost stays out of the
// latencies). Returns the first dial error, with however many
// connections did establish left usable.
func (c *Client) Connect() error {
	for {
		c.mu.Lock()
		healthy := 0
		for _, cn := range c.conns {
			if cn != nil && cn.usable() {
				healthy++
			}
		}
		c.mu.Unlock()
		if healthy >= c.poolSize() {
			return nil
		}
		if _, err := c.addConn(); err != nil {
			return err
		}
	}
}

// Close tears down every connection. In-flight calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	conns := make([]*wireConn, len(c.conns))
	copy(conns, c.conns)
	c.conns = nil
	c.mu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.teardown(ErrClosed)
		}
	}
}

// getConn returns a usable connection, dialing one if the pool is empty.
func (c *Client) getConn() (*wireConn, error) {
	c.mu.Lock()
	n := len(c.conns)
	for i := 0; i < n; i++ {
		cn := c.conns[(c.rr+i)%n]
		if cn != nil && cn.usable() {
			c.rr = (c.rr + i + 1) % n
			c.mu.Unlock()
			return cn, nil
		}
	}
	c.mu.Unlock()
	return c.addConn()
}

// addConn dials one new connection, respecting the backoff gate and
// letting only one dial run at a time. The dial happens with no lock
// held.
func (c *Client) addConn() (*wireConn, error) {
	if time.Now().UnixNano() < c.nextDial.Load() {
		return nil, ErrUnavailable
	}
	if !c.dialing.CompareAndSwap(false, true) {
		return nil, ErrUnavailable
	}
	cn, err := c.dial()
	if err != nil {
		fails := c.dialFails.Add(1)
		c.nextDial.Store(time.Now().Add(backoffFor(c.retryBase(), int(fails))).UnixNano())
		c.dialing.Store(false)
		return nil, err
	}
	c.dialFails.Store(0)
	c.nextDial.Store(0)
	c.mu.Lock()
	if len(c.conns) < c.poolSize() {
		c.conns = append(c.conns, cn)
	} else {
		placed := false
		for i, old := range c.conns {
			if old == nil || !old.usable() {
				c.conns[i] = cn
				placed = true
				break
			}
		}
		if !placed {
			// The pool filled up while we dialed; keep the youngest.
			c.conns[c.rr%len(c.conns)] = cn
		}
	}
	c.mu.Unlock()
	c.dialing.Store(false)
	return cn, nil
}

// dial establishes one connection and runs the Hello/Schema handshake.
func (c *Client) dial() (*wireConn, error) {
	nc, err := net.DialTimeout("tcp", c.Addr, defaultDialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	bw := bufio.NewWriterSize(nc, connBufSize)
	fr := NewFrameReader(bufio.NewReaderSize(nc, connBufSize))
	fw := NewFrameWriter(bw)
	nc.SetDeadline(time.Now().Add(defaultDialTimeout))
	if err := fw.Write(FrameHello, nil); err != nil {
		nc.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	ft, p, err := fr.Read()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if ft == FrameError {
		we, perr := ParseError(p)
		nc.Close()
		if perr != nil {
			return nil, perr
		}
		return nil, &we
	}
	if ft != FrameSchema {
		nc.Close()
		return nil, ErrBadPayload
	}
	info, err := DecodeSchemaInfo(p)
	if err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	cn := &wireConn{
		client:  c,
		c:       nc,
		bw:      bw,
		fr:      fr,
		fw:      fw,
		enc:     NewRecordEncoder(info.Schema),
		lastVer: info.ModelVersion,
		writeq:  make(chan []byte, 64),
		closed:  make(chan struct{}),
		pending: make(map[uint64]*wireCall),
	}
	if cn.enc.Fingerprint() != info.Fingerprint {
		// Client and server hash the same schema differently — a version
		// skew bug, not a transient; surface it loudly.
		nc.Close()
		return nil, ErrBadPayload
	}
	go cn.readLoop()
	go cn.writeLoop()
	return cn, nil
}

// wireCall is one in-flight request: the reader decodes verdicts straight
// into dst, then signals done (buffered, never blocks).
type wireCall struct {
	dst  []nids.Verdict
	done chan callResult
}

type callResult struct {
	version string
	err     error
}

// wireConn is one multiplexed connection: a writer goroutine serializes
// pipelined request frames, a reader goroutine dispatches out-of-order
// responses to pending calls by id.
type wireConn struct {
	client *Client
	c      net.Conn
	bw     *bufio.Writer
	fr     *FrameReader
	fw     *FrameWriter
	enc    *RecordEncoder

	writeq chan []byte
	closed chan struct{}
	once   sync.Once

	draining atomic.Bool

	mu      sync.Mutex // guards pending + dead; never held across I/O
	dead    bool
	pending map[uint64]*wireCall

	lastVer string // reader-goroutine-owned version intern cache
}

func (cn *wireConn) usable() bool {
	cn.mu.Lock()
	ok := !cn.dead
	cn.mu.Unlock()
	return ok && !cn.draining.Load()
}

// register parks a call awaiting response id. Fails if the conn died.
func (cn *wireConn) register(id uint64, ca *wireCall) bool {
	cn.mu.Lock()
	if cn.dead {
		cn.mu.Unlock()
		return false
	}
	cn.pending[id] = ca
	cn.mu.Unlock()
	return true
}

// take removes and returns the call waiting on id, if still pending.
func (cn *wireConn) take(id uint64) (*wireCall, bool) {
	cn.mu.Lock()
	ca, ok := cn.pending[id]
	if ok {
		delete(cn.pending, id)
	}
	cn.mu.Unlock()
	return ca, ok
}

// drainCloseIfIdle closes a draining connection once nothing is pending
// on it: the server's graceful drain waits for the client to collect its
// last in-flight response and hang up, so no frame is ever cut off
// mid-stream. A call that races the close and registers anyway is failed
// with ErrClosed and retried (or shed) by its caller.
func (cn *wireConn) drainCloseIfIdle() {
	if !cn.draining.Load() {
		return
	}
	cn.mu.Lock()
	idle := len(cn.pending) == 0 && !cn.dead
	cn.mu.Unlock()
	if idle {
		cn.teardown(ErrClosed)
	}
}

// teardown kills the connection once: marks it dead, closes the socket
// (unblocking both loops), and fails every pending call with err.
func (cn *wireConn) teardown(err error) {
	cn.once.Do(func() {
		cn.mu.Lock()
		cn.dead = true
		calls := make([]*wireCall, 0, len(cn.pending))
		for id := range cn.pending {
			calls = append(calls, cn.pending[id])
			delete(cn.pending, id)
		}
		cn.mu.Unlock()
		close(cn.closed)
		cn.c.Close()
		for _, ca := range calls {
			ca.done <- callResult{err: err}
		}
	})
}

// writeLoop is the connection's single writer: it frames queued request
// payloads and flushes. Payload buffers return to the pool after the
// write.
func (cn *wireConn) writeLoop() {
	for {
		select {
		case p := <-cn.writeq:
			err := cn.fw.Write(FrameScore, p)
			if err == nil {
				// Flush immediately: pipelining comes from many goroutines
				// queueing, not from batching writes at the cost of latency.
				err = cn.bw.Flush()
			}
			cn.client.framesOut.Add(1)
			cn.client.bytesOut.Add(int64(HeaderSize + len(p)))
			putBuf(p)
			if err != nil {
				cn.teardown(ErrClosed)
				return
			}
		case <-cn.closed:
			return
		}
	}
}

// readLoop is the connection's single reader: it dispatches Result and
// Error frames to pending calls, and handles GoAway (drain notice).
func (cn *wireConn) readLoop() {
	for {
		ft, p, err := cn.fr.Read()
		if err != nil {
			cn.teardown(ErrClosed)
			return
		}
		cn.client.framesIn.Add(1)
		cn.client.bytesIn.Add(int64(HeaderSize + len(p)))
		switch ft {
		case FrameResult:
			resp, perr := ParseScoreResponse(p)
			if perr != nil {
				cn.teardown(perr)
				return
			}
			ca, ok := cn.take(resp.ID)
			if !ok {
				continue // caller gave up (timed out) before the answer came
			}
			if resp.Count != len(ca.dst) {
				ca.done <- callResult{err: errVerdictCount}
				continue
			}
			if err := resp.DecodeVerdicts(ca.dst); err != nil {
				ca.done <- callResult{err: err}
				continue
			}
			if string(resp.Version) != cn.lastVer {
				cn.lastVer = string(resp.Version)
			}
			ca.done <- callResult{version: cn.lastVer}
			cn.drainCloseIfIdle()
		case FrameError:
			we, perr := ParseError(p)
			if perr != nil {
				cn.teardown(perr)
				return
			}
			if we.ID == 0 {
				// Connection-level fault: the server is closing on us.
				cn.teardown(&we)
				return
			}
			if ca, ok := cn.take(we.ID); ok {
				ca.done <- callResult{err: &we}
			}
			cn.drainCloseIfIdle()
		case FrameGoAway:
			cn.draining.Store(true)
			cn.client.draining.Store(true)
			// The server holds a draining connection open until we, having
			// collected every outstanding response, close our end.
			cn.drainCloseIfIdle()
		default:
			// A server must only send Result/Error/GoAway after the
			// handshake; anything else is a protocol violation.
			cn.teardown(ErrBadPayload)
			return
		}
	}
}

// bufPool recycles request payload buffers across calls and connections.
var bufPool = sync.Pool{New: func() any { return []byte(nil) }}

func getBuf() []byte  { return bufPool.Get().([]byte)[:0] }
func putBuf(p []byte) { bufPool.Put(p) } //nolint:staticcheck // slice header boxing is fine here

// Score scores recs against the server (Tag selects the slot; "" = live)
// and returns verdicts plus the answering model version. Transport
// failures are retried with jittered exponential backoff; if the wire
// stays unavailable and a Fallback is set, the call is answered over
// HTTP.
func (c *Client) Score(recs []*data.Record) ([]nids.Verdict, string, error) {
	out := make([]nids.Verdict, len(recs))
	version, err := c.score(recs, out)
	if err != nil {
		return nil, "", err
	}
	return out, version, nil
}

// score runs the retry loop, decoding verdicts into out.
func (c *Client) score(recs []*data.Record, out []nids.Verdict) (string, error) {
	if len(recs) == 0 {
		return "", nil
	}
	var last error
	for i := 0; i < c.attempts(); i++ {
		if i > 0 {
			time.Sleep(backoffFor(c.retryBase(), i))
		}
		version, err := c.scoreOnce(recs, out)
		if err == nil {
			c.version.Store(version)
			return version, nil
		}
		last = err
		if !wireRetryable(err) {
			break
		}
	}
	if c.Fallback != nil && fallbackEligible(last) {
		verdicts, version, err := c.Fallback.Score(recs)
		if err == nil {
			c.fallbacks.Add(1)
			copy(out, verdicts)
			return version, nil
		}
	}
	c.errs.Add(1)
	return "", last
}

// scoreOnce performs one request over one connection, with breaker
// accounting mirroring the HTTP client: transport failures and hard
// server errors are breaker failures; shed answers (429/503) and other
// deliberate statuses are not.
func (c *Client) scoreOnce(recs []*data.Record, out []nids.Verdict) (string, error) {
	b := c.Breaker
	if b != nil && !b.Allow() {
		return "", ErrBreakerOpen
	}
	version, err := c.scoreConn(recs, out)
	if b != nil {
		b.Record(err == nil || !wireBreakerFailure(err))
	}
	return version, err
}

func (c *Client) scoreConn(recs []*data.Record, out []nids.Verdict) (string, error) {
	cn, err := c.getConn()
	if err != nil {
		return "", err
	}
	timeout := c.timeout()
	deadlineMS := uint32(timeout / time.Millisecond)
	id := c.nextID.Add(1)
	if id == 0 {
		id = c.nextID.Add(1)
	}
	buf := getBuf()
	buf, err = cn.enc.AppendScoreRequest(buf, id, deadlineMS, c.Tag, recs)
	if err != nil {
		putBuf(buf)
		return "", err
	}
	ca := &wireCall{dst: out, done: make(chan callResult, 1)}
	if !cn.register(id, ca) {
		putBuf(buf)
		return "", ErrClosed
	}
	select {
	case cn.writeq <- buf:
	case <-cn.closed:
		putBuf(buf)
		if _, ok := cn.take(id); ok {
			return "", ErrClosed
		}
		r := <-ca.done // teardown already owned the call; take its verdict
		return r.version, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ca.done:
		return r.version, r.err
	case <-timer.C:
		if _, ok := cn.take(id); ok {
			return "", ErrTimeout
		}
		// The reader claimed the call before we could withdraw it: the
		// answer is a channel send away — take it instead of racing it.
		r := <-ca.done
		return r.version, r.err
	}
}

// wireRetryable mirrors serve's retryable(): transport failures and
// overload/transient statuses retry; other server answers don't. A 409
// (schema fingerprint mismatch — the model was promoted under us) retries
// after tearing the connection down so the redial re-handshakes.
func wireRetryable(err error) bool {
	if errors.Is(err, ErrBreakerOpen) {
		return false
	}
	var we *WireError
	if errors.As(err, &we) {
		switch we.Status {
		case 429, 500, 502, 503, 504, 409:
			return true
		}
		return false
	}
	return true
}

// wireBreakerFailure mirrors serve's breakerFailure(): evidence the
// server is down, as opposed to a deliberate answer from a live one.
func wireBreakerFailure(err error) bool {
	var we *WireError
	if errors.As(err, &we) {
		switch we.Status {
		case 500, 502, 504:
			return true
		}
		return false
	}
	return true
}

// fallbackEligible limits HTTP fallback to wire-transport unavailability.
// Deliberate server answers (shedding, bad request, fingerprint skew) and
// in-flight losses must not be re-asked over HTTP: the server heard them.
func fallbackEligible(err error) bool {
	var we *WireError
	if errors.As(err, &we) {
		return false
	}
	return !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrClosed)
}

// ShedStatus reports whether err is the server deliberately shedding load
// (admission control 429, deadline/drain 503) and with which status —
// loadgen accounting uses it to separate shed from failure.
func ShedStatus(err error) (int, bool) {
	var we *WireError
	if errors.As(err, &we) && (we.Status == 429 || we.Status == 503) {
		return we.Status, true
	}
	return 0, false
}

// Name implements nids.Detector.
func (c *Client) Name() string {
	if c.Tag != "" {
		return "wire:" + c.Addr + "#" + c.Tag
	}
	return "wire:" + c.Addr
}

// Detect implements nids.Detector.
func (c *Client) Detect(rec *data.Record) nids.Verdict {
	var v [1]nids.Verdict
	c.DetectBatch([]*data.Record{rec}, v[:])
	return v[0]
}

// DetectBatch implements nids.BatchDetector with the same degradation
// contract as serve.RemoteDetector: failed calls yield verdicts marked
// Failed (never a hang, never fabricated scores) and are tallied in
// Errors.
func (c *Client) DetectBatch(recs []*data.Record, verdicts []nids.Verdict) {
	if _, err := c.score(recs, verdicts[:len(recs)]); err != nil {
		for i := range verdicts[:len(recs)] {
			verdicts[i] = nids.Verdict{Failed: true}
		}
	}
}
