package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// prepared holds a dataset ready for training: standardized features,
// labels and split indices.
type prepared struct {
	id       DatasetID
	cfg      synth.Config
	schema   data.Schema
	x        *tensor.Tensor // (N, F) standardized
	y        []int
	folds    []data.Fold
	features int
	classes  int
	epochs   int
}

// prepare generates, preprocesses and splits a dataset under the profile.
func prepare(p Profile, id DatasetID) (*prepared, error) {
	cfg, records, epochs, err := p.DatasetConfig(id)
	if err != nil {
		return nil, err
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	ds := gen.Generate(records, p.Seed)
	x, y, _ := data.Preprocess(ds)
	rng := rand.New(rand.NewSource(p.Seed + 17))
	var folds []data.Fold
	if p.Folds >= 2 {
		folds = data.StratifiedKFold(rng, y, p.Folds)
	} else {
		folds = []data.Fold{data.TrainTestSplit(rng, y, p.TestFrac)}
	}
	return &prepared{
		id: id, cfg: cfg, schema: gen.Schema(),
		x: x, y: y, folds: folds,
		features: gen.Schema().EncodedWidth(),
		classes:  gen.Schema().NumClasses(),
		epochs:   epochs,
	}, nil
}

// gather copies the selected rows into a fresh (len(idx), 1, F) tensor and
// label slice — the rank-3 input shape every model consumes.
func gather(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int) {
	f := x.Dim(1)
	out := tensor.New(len(idx), f)
	tensor.GatherRowsInto(out, x, idx)
	labels := make([]int, len(idx))
	for i, j := range idx {
		labels[i] = y[j]
	}
	return out.Reshape(len(idx), 1, f), labels
}

// LossCurve is one design's per-epoch training and testing loss — the
// series plotted in Fig. 5.
type LossCurve struct {
	Design string
	Train  []float64
	Test   []float64
}

// NetEval is the outcome of training one network on one dataset.
type NetEval struct {
	Design    string
	Dataset   DatasetID
	Confusion *metrics.Confusion
	Summary   metrics.Summary
	Curve     LossCurve
	Params    int
}

// trainEval trains the named model on every fold and returns the merged
// evaluation; the loss curve is recorded on the first fold.
func trainEval(p Profile, prep *prepared, modelName string, log io.Writer) (*NetEval, error) {
	spec, err := models.Lookup(modelName)
	if err != nil {
		return nil, err
	}
	conf := metrics.NewConfusion(prep.classes)
	curve := LossCurve{Design: modelName}
	paramCount := 0

	for fi, fold := range prep.folds {
		rng := rand.New(rand.NewSource(p.Seed + int64(fi)*101))
		dropRNG := rand.New(rand.NewSource(p.Seed + int64(fi)*101 + 1))
		cfg := models.PaperBlockConfig(prep.features)
		stack := spec.Build(rng, dropRNG, cfg, prep.features, prep.classes)
		opt := nn.NewRMSprop(p.LR)
		opt.MaxNorm = p.GradClip
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
		paramCount = nn.ParamCount(stack.Params())

		xTr, yTr := gather(prep.x, prep.y, fold.Train)
		xTe, yTe := gather(prep.x, prep.y, fold.Test)

		recordCurve := fi == 0
		stats := net.Fit(xTr, yTr, nn.FitConfig{
			Epochs:     prep.epochs,
			BatchSize:  p.Batch,
			Shuffle:    true,
			RNG:        rng,
			TestX:      xTe,
			TestLabels: yTe,
			Verbose: func(st nn.EpochStats) {
				if recordCurve {
					curve.Train = append(curve.Train, st.TrainLoss)
					curve.Test = append(curve.Test, st.TestLoss)
				}
				if log != nil {
					fmt.Fprintf(log, "  [%s/%s fold %d] epoch %d/%d train_loss=%.4f test_loss=%.4f test_acc=%.4f\n",
						prep.id, modelName, fi, st.Epoch, prep.epochs, st.TrainLoss, st.TestLoss, st.TestAcc)
				}
			},
		})
		_ = stats
		pred := net.PredictClasses(xTe, p.Batch)
		conf.AddAll(yTe, pred)
	}
	return &NetEval{
		Design:    modelName,
		Dataset:   prep.id,
		Confusion: conf,
		Summary:   metrics.Summarize(modelName, conf, 0),
		Curve:     curve,
		Params:    paramCount,
	}, nil
}

// FourNetDesigns are the paper's four evaluated networks in table order.
var FourNetDesigns = []string{"plain-21", "residual-21", "plain-41", "pelican"}

// FourNetResult carries the four networks' evaluations for one dataset; it
// powers Fig. 5 (curves), Table II (TP/FP) and Tables III/IV (metrics).
type FourNetResult struct {
	Dataset DatasetID
	Evals   []*NetEval
}

// RunFourNets trains Plain-21, Residual-21, Plain-41 and Residual-41
// (Pelican) on the dataset — the runs behind Fig. 5 and Tables II–IV.
func RunFourNets(p Profile, id DatasetID, log io.Writer) (*FourNetResult, error) {
	prep, err := prepare(p, id)
	if err != nil {
		return nil, err
	}
	res := &FourNetResult{Dataset: id}
	for _, name := range FourNetDesigns {
		ev, err := trainEval(p, prep, name, log)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", name, id, err)
		}
		res.Evals = append(res.Evals, ev)
	}
	return res, nil
}

// displayName maps registry names onto the paper's design labels.
func displayName(model string) string {
	switch model {
	case "pelican":
		return "Residual-41 (Pelican)"
	case "plain-21":
		return "Plain-21"
	case "plain-41":
		return "Plain-41"
	case "residual-21":
		return "Residual-21"
	}
	return model
}

// FormatTable2 renders the Table II layout (total TP and FP per network)
// from the two datasets' four-network results.
func FormatTable2(nsl, unsw *FourNetResult) string {
	out := "TABLE II: TOTAL TRUE ATTACKS DETECTED AND TOTAL FALSE ALARMS\n"
	out += fmt.Sprintf("%-12s %-8s", "Dataset", "Metric")
	for _, name := range FourNetDesigns {
		out += fmt.Sprintf(" %22s", displayName(name))
	}
	out += "\n"
	for _, res := range []*FourNetResult{nsl, unsw} {
		if res == nil {
			continue
		}
		for _, metric := range []string{"TP", "FP"} {
			out += fmt.Sprintf("%-12s %-8s", res.Dataset, metric)
			for _, ev := range res.Evals {
				v := ev.Summary.TP
				if metric == "FP" {
					v = ev.Summary.FP
				}
				out += fmt.Sprintf(" %22d", v)
			}
			out += "\n"
		}
	}
	return out
}

// FormatTable34 renders Table III (NSL-KDD) or Table IV (UNSW-NB15):
// DR/ACC/FAR for the four networks.
func FormatTable34(res *FourNetResult) string {
	title := "TABLE III: TESTING PERFORMANCE ON NSL-KDD"
	if res.Dataset == UNSW {
		title = "TABLE IV: TESTING PERFORMANCE ON UNSW-NB15"
	}
	rows := make([]metrics.Summary, 0, len(res.Evals))
	for _, ev := range res.Evals {
		s := ev.Summary
		s.Design = displayName(ev.Design)
		rows = append(rows, s)
	}
	return metrics.FormatTable(title, rows)
}

// FormatFig5 renders one Fig. 5 panel: per-epoch loss series for the four
// networks. kind selects "train" or "test".
func FormatFig5(res *FourNetResult, kind string) string {
	out := fmt.Sprintf("Fig. 5 (%s loss) on %s\n", kind, res.Dataset)
	out += "epoch"
	for _, ev := range res.Evals {
		out += fmt.Sprintf(" %22s", displayName(ev.Design))
	}
	out += "\n"
	if len(res.Evals) == 0 {
		return out
	}
	n := len(res.Evals[0].Curve.Train)
	for e := 0; e < n; e++ {
		out += fmt.Sprintf("%5d", e+1)
		for _, ev := range res.Evals {
			series := ev.Curve.Train
			if kind == "test" {
				series = ev.Curve.Test
			}
			if e < len(series) {
				out += fmt.Sprintf(" %22.4f", series[e])
			}
		}
		out += "\n"
	}
	return out
}
