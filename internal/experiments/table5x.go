package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// Table5XDesigns extends the paper's Table V with three further classical
// baselines implemented in internal/ml — logistic regression, Gaussian
// naive Bayes, and k-nearest-neighbours — positioning the paper's
// comparison inside a broader classical spectrum.
var Table5XDesigns = []string{"logistic", "naive-bayes", "knn"}

// extendedBaseline builds the extra classifiers.
func extendedBaseline(id string, classes int, seed int64) (ml.Classifier, string, error) {
	switch id {
	case "logistic":
		return ml.NewLogistic(ml.LogisticConfig{Classes: classes, Epochs: 40, Seed: seed}), "Logistic Regression", nil
	case "naive-bayes":
		return ml.NewNaiveBayes(classes), "Naive Bayes", nil
	case "knn":
		c := ml.NewKNNClassifier(5, classes)
		c.MaxRef = 2500
		return c, "k-NN (k=5)", nil
	}
	return nil, "", fmt.Errorf("experiments: unknown extended baseline %q", id)
}

// RunTable5Extended evaluates the extra classical baselines on the same
// UNSW-NB15 workload Table V uses. Combine with RunTable5 for the full
// twelve-design picture.
func RunTable5Extended(p Profile, log io.Writer) (*Table5Result, error) {
	prep, err := prepare(p, UNSW)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{Dataset: UNSW}
	for _, id := range Table5XDesigns {
		clf, label, err := extendedBaseline(id, prep.classes, p.Seed)
		if err != nil {
			return nil, err
		}
		conf := metrics.NewConfusion(prep.classes)
		for fi, fold := range prep.folds {
			if fi > 0 {
				if c, _, err := extendedBaseline(id, prep.classes, p.Seed+int64(fi)); err == nil {
					clf = c
				}
			}
			xTr, yTr := gatherFlat(prep.x, prep.y, fold.Train)
			xTe, yTe := gatherFlat(prep.x, prep.y, fold.Test)
			if log != nil {
				fmt.Fprintf(log, "  [table5x/%s fold %d] fitting on %d records\n", id, fi, xTr.Dim(0))
			}
			if err := clf.Fit(xTr, yTr); err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			conf.AddAll(yTe, clf.Predict(xTe))
		}
		res.Rows = append(res.Rows, metrics.Summarize(label, conf, 0))
	}
	return res, nil
}

// FormatTable5Extended renders the extension rows.
func FormatTable5Extended(res *Table5Result) string {
	return metrics.FormatTable(
		"TABLE Vx: ADDITIONAL CLASSICAL BASELINES (UNSW-NB15, extension)",
		res.Rows)
}
