package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/wire"
)

// The transport A/B: one in-process scoring server exposing both planes
// (HTTP/JSON and the binary wire protocol), driven back to back by
// equal-concurrency load at equal batch size on equal hardware. Both
// transports land on the same per-slot batcher/scorer path, so any
// difference is pure transport tax: JSON encode/decode and per-request
// HTTP framing vs packed little-endian frames on persistent pipelined
// connections. Bytes on the wire are measured at the server's listeners
// (headers included), not estimated.

// TransportBenchRow is one transport's measurement.
type TransportBenchRow struct {
	Transport      string  `json:"transport"`
	Requests       int64   `json:"requests"`
	Records        int64   `json:"records"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	RecordsPerSec  float64 `json:"records_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50US          float64 `json:"p50_us"`
	P95US          float64 `json:"p95_us"`
	P99US          float64 `json:"p99_us"`
	// Bytes per scored record as observed on the server's own listener,
	// request (in) and response (out) directions, framing included.
	BytesInPerRecord  float64 `json:"bytes_in_per_record"`
	BytesOutPerRecord float64 `json:"bytes_out_per_record"`
}

// TransportBenchResult is what pelican-bench -exp transport reports and
// serializes (BENCH_transport.json).
type TransportBenchResult struct {
	Model       string              `json:"model"`
	Dataset     string              `json:"dataset"`
	Features    int                 `json:"features"`
	Classes     int                 `json:"classes"`
	Batch       int                 `json:"batch"`
	Concurrency int                 `json:"concurrency"`
	DurationS   float64             `json:"duration_s"`
	Rows        []TransportBenchRow `json:"rows"`
	// SpeedupWire is wire records/s over HTTP records/s.
	SpeedupWire float64 `json:"speedup_wire"`
	// VerdictsAgree reports the parity check: the same batch scored
	// through both transports produced identical verdicts.
	VerdictsAgree bool `json:"verdicts_agree"`
}

// countingListener measures bytes crossing accepted connections in both
// directions — the ground truth for bytes-on-wire per record.
type countingListener struct {
	net.Listener
	in, out *atomic.Int64
}

func (cl countingListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return countingConn{Conn: c, in: cl.in, out: cl.out}, nil
}

type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (cc countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.in.Add(int64(n))
	return n, err
}

func (cc countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.out.Add(int64(n))
	return n, err
}

// transportWindow is how long each transport is driven. Long enough for
// the batcher and connection pools to reach steady state; the Tiny
// profiles shrink it so the CI smoke stays fast.
func transportWindow(p Profile) time.Duration {
	if p.Tiny {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// RunTransportBench trains a small model, serves it over both planes,
// and measures HTTP/JSON against the binary wire transport.
func RunTransportBench(p Profile, log io.Writer) (*TransportBenchResult, error) {
	const batch, concurrency = 16, 8
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return nil, err
	}
	nrec := 600
	if p.Records > 0 && p.Records < nrec {
		nrec = p.Records
	}
	if log != nil {
		fmt.Fprintf(log, "transport-bench: training mlp on %d nsl-kdd records\n", nrec)
	}
	ds := gen.Generate(nrec, p.Seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(p.Seed))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(p.Seed+1)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	mdl := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	mdl.Fit(x.Reshape(x.Dim(0), 1, x.Dim(1)), y, nn.FitConfig{Epochs: 2, BatchSize: 128, Shuffle: true, RNG: rng})
	a, err := serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, mdl)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(a, serve.Config{Replicas: 2, MaxBatch: 64, MaxWait: time.Millisecond, ObsOff: true})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Both planes on loopback, each behind its own byte-counting listener.
	var httpIn, httpOut, wireIn, wireOut atomic.Int64
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(countingListener{Listener: hln, in: &httpIn, out: &httpOut})
	defer httpSrv.Close()
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wireCtx, wireCancel := context.WithCancel(context.Background())
	defer wireCancel()
	go srv.ServeWire(wireCtx, countingListener{Listener: wln, in: &wireIn, out: &wireOut})

	baseURL := "http://" + hln.Addr().String()
	window := transportWindow(p)
	res := &TransportBenchResult{
		Model: "mlp", Dataset: "nsl-kdd", Features: features, Classes: classes,
		Batch: batch, Concurrency: concurrency, DurationS: window.Seconds(),
	}

	// The drive set cycles a fixed pool of synthetic flows. Both hot loops
	// encode from the same prepared batches inside the timed window — the
	// client-side encode (json.Marshal vs packed append) is part of each
	// transport's tax, charged symmetrically; only flow generation and
	// request-struct assembly stay outside.
	drive := gen.Generate(512, p.Seed+2)
	var httpReqs []*httpBatchRequest
	var wireBatches [][]*data.Record
	for lo := 0; lo+batch <= len(drive.Records); lo += batch {
		req := &httpBatchRequest{Records: make([]serve.RecordJSON, 0, batch)}
		recs := make([]*data.Record, 0, batch)
		for j := lo; j < lo+batch; j++ {
			req.Records = append(req.Records, serve.RecordJSON{
				Numeric: drive.Records[j].Numeric, Categorical: drive.Records[j].Categorical,
			})
			recs = append(recs, &drive.Records[j])
		}
		httpReqs = append(httpReqs, req)
		wireBatches = append(wireBatches, recs)
	}

	// HTTP leg.
	if log != nil {
		fmt.Fprintf(log, "transport-bench: driving http/json for %s\n", window)
	}
	httpRow, httpVerdicts, err := driveHTTP(baseURL, httpReqs, batch, concurrency, window)
	if err != nil {
		return nil, err
	}
	httpRow.BytesInPerRecord = perRecord(httpIn.Load(), httpRow.Records)
	httpRow.BytesOutPerRecord = perRecord(httpOut.Load(), httpRow.Records)
	res.Rows = append(res.Rows, httpRow)

	// Wire leg.
	if log != nil {
		fmt.Fprintf(log, "transport-bench: driving wire for %s\n", window)
	}
	wireIn.Store(0)
	wireOut.Store(0)
	wireRow, wireVerdicts, err := driveWire(wln.Addr().String(), wireBatches, concurrency, window)
	if err != nil {
		return nil, err
	}
	wireRow.BytesInPerRecord = perRecord(wireIn.Load(), wireRow.Records)
	wireRow.BytesOutPerRecord = perRecord(wireOut.Load(), wireRow.Records)
	res.Rows = append(res.Rows, wireRow)

	if httpRow.RecordsPerSec > 0 {
		res.SpeedupWire = wireRow.RecordsPerSec / httpRow.RecordsPerSec
	}
	res.VerdictsAgree = verdictsEqual(httpVerdicts, wireVerdicts)
	return res, nil
}

func perRecord(bytes, records int64) float64 {
	if records == 0 {
		return 0
	}
	return float64(bytes) / float64(records)
}

// verdictPair is the transport-independent part of a verdict, for the
// parity check.
type verdictPair struct {
	attack bool
	class  int
}

func verdictsEqual(a, b []verdictPair) bool {
	if len(a) == 0 || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// httpBatchRequest is the pre-assembled request struct one HTTP call
// marshals inside the timed loop.
type httpBatchRequest struct {
	Records []serve.RecordJSON `json:"records"`
}

// driveHTTP hammers /v1/detect-batch, marshaling each request in the
// timed loop (the client-side JSON encode is part of the transport's
// cost), and returns the row plus the first batch's verdicts for the
// parity check.
func driveHTTP(baseURL string, reqs []*httpBatchRequest, batch, concurrency int, window time.Duration) (TransportBenchRow, []verdictPair, error) {
	row := TransportBenchRow{Transport: "http"}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
	}
	// Parity sample first, outside the timed window.
	parityBody, err := json.Marshal(reqs[0])
	if err != nil {
		return row, nil, err
	}
	parity, err := httpScore(client, baseURL, parityBody, batch)
	if err != nil {
		return row, nil, fmt.Errorf("http parity request: %w", err)
	}

	var mu sync.Mutex
	var lat []time.Duration
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	var requests, records, shed, errs atomic.Int64
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := w; time.Now().Before(deadline); i++ {
				start := time.Now()
				b, err := json.Marshal(reqs[i%len(reqs)])
				if err != nil {
					errs.Add(1)
					continue
				}
				resp, err := client.Post(baseURL+"/v1/detect-batch", "application/json", bytes.NewReader(b))
				if err != nil {
					errs.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					shed.Add(1)
					continue
				}
				var br struct {
					Verdicts []serve.VerdictJSON `json:"verdicts"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK || len(br.Verdicts) != batch {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(start))
				requests.Add(1)
				records.Add(int64(len(br.Verdicts)))
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(w)
	}
	start := time.Now()
	wg.Wait()
	fillRow(&row, requests.Load(), records.Load(), shed.Load(), errs.Load(), lat, time.Since(start), window)
	return row, parity, nil
}

func httpScore(client *http.Client, baseURL string, body []byte, batch int) ([]verdictPair, error) {
	resp, err := client.Post(baseURL+"/v1/detect-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var br struct {
		Verdicts []serve.VerdictJSON `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Verdicts) != batch {
		return nil, fmt.Errorf("got %d verdicts, want %d", len(br.Verdicts), batch)
	}
	out := make([]verdictPair, len(br.Verdicts))
	for i, v := range br.Verdicts {
		out[i] = verdictPair{attack: v.IsAttack, class: v.Class}
	}
	return out, nil
}

// driveWire hammers the binary plane with the same batches at the same
// concurrency through one multiplexed client.
func driveWire(addr string, batches [][]*data.Record, concurrency int, window time.Duration) (TransportBenchRow, []verdictPair, error) {
	row := TransportBenchRow{Transport: "wire"}
	wc := wire.NewClient(addr)
	wc.Conns = concurrency
	if wc.Conns > 8 {
		wc.Conns = 8
	}
	if err := wc.Connect(); err != nil {
		return row, nil, fmt.Errorf("connect wire %s: %w", addr, err)
	}
	defer wc.Close()

	pv, _, err := wc.Score(batches[0])
	if err != nil {
		return row, nil, fmt.Errorf("wire parity request: %w", err)
	}
	parity := make([]verdictPair, len(pv))
	for i, v := range pv {
		parity[i] = verdictPair{attack: v.IsAttack, class: v.Class}
	}

	var mu sync.Mutex
	var lat []time.Duration
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	var requests, records, shed, errs atomic.Int64
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := w; time.Now().Before(deadline); i++ {
				b := batches[i%len(batches)]
				start := time.Now()
				verdicts, _, err := wc.Score(b)
				if err != nil {
					if _, ok := wire.ShedStatus(err); ok {
						shed.Add(1)
					} else {
						errs.Add(1)
					}
					continue
				}
				local = append(local, time.Since(start))
				requests.Add(1)
				records.Add(int64(len(verdicts)))
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(w)
	}
	start := time.Now()
	wg.Wait()
	fillRow(&row, requests.Load(), records.Load(), shed.Load(), errs.Load(), lat, time.Since(start), window)
	return row, parity, nil
}

func fillRow(row *TransportBenchRow, requests, records, shed, errs int64, lat []time.Duration, elapsed, window time.Duration) {
	if elapsed > window {
		elapsed = window
	}
	row.Requests = requests
	row.Records = records
	row.Shed = shed
	row.Errors = errs
	if s := elapsed.Seconds(); s > 0 {
		row.RecordsPerSec = float64(records) / s
		row.RequestsPerSec = float64(requests) / s
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) float64 {
			return float64(lat[int(p*float64(len(lat)-1))].Microseconds())
		}
		row.P50US = pct(0.50)
		row.P95US = pct(0.95)
		row.P99US = pct(0.99)
	}
}

// FormatTransportBench renders the A/B table.
func FormatTransportBench(r *TransportBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TRANSPORT A/B — %s on %s (%d features, batch %d, %d clients, %.1fs per leg)\n",
		r.Model, r.Dataset, r.Features, r.Batch, r.Concurrency, r.DurationS)
	fmt.Fprintf(&b, "%-6s %12s %10s %9s %9s %9s %10s %10s %6s %6s\n",
		"plane", "records/s", "req/s", "p50", "p95", "p99", "B/rec in", "B/rec out", "shed", "errs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %12.0f %10.0f %8.0fµ %8.0fµ %8.0fµ %10.1f %10.1f %6d %6d\n",
			row.Transport, row.RecordsPerSec, row.RequestsPerSec,
			row.P50US, row.P95US, row.P99US,
			row.BytesInPerRecord, row.BytesOutPerRecord, row.Shed, row.Errors)
	}
	if r.SpeedupWire > 0 {
		fmt.Fprintf(&b, "wire speedup: %.2fx records/s; verdict parity: %v\n", r.SpeedupWire, r.VerdictsAgree)
	}
	return b.String()
}
