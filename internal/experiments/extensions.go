package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/anomaly"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/signature"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// RunAnomalyComparison quantifies the paper's §VI argument: anomaly
// detection (profile of normal traffic only) yields a much higher
// false-alarm rate than supervised learning on the same traffic. It
// evaluates a Gaussian profile and a k-NN profile against a supervised
// LuNet on NSL-KDD-shaped traffic.
func RunAnomalyComparison(p Profile, log io.Writer) ([]metrics.Summary, error) {
	prep, err := prepare(p, NSL)
	if err != nil {
		return nil, err
	}
	fold := prep.folds[0]
	var rows []metrics.Summary

	// Anomaly detectors: profile on the normal rows of the training split.
	var normalIdx []int
	for _, i := range fold.Train {
		if prep.y[i] == 0 {
			normalIdx = append(normalIdx, i)
		}
	}
	normal := tensor.New(len(normalIdx), prep.features)
	for i, j := range normalIdx {
		copy(normal.Row(i), prep.x.Row(j))
	}

	knn := anomaly.NewKNN(5)
	knn.MaxRef = 1500
	detectors := []anomaly.Detector{anomaly.NewGaussian(), knn}
	for _, det := range detectors {
		th, err := anomaly.Calibrate(det, normal, 0.99)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", det.Name(), err)
		}
		conf := metrics.NewConfusion(2)
		for _, i := range fold.Test {
			actual := 0
			if prep.y[i] != 0 {
				actual = 1
			}
			pred := 0
			if th.IsAttack(prep.x.Row(i)) {
				pred = 1
			}
			conf.Add(actual, pred)
		}
		rows = append(rows, metrics.Summarize("anomaly: "+det.Name(), conf, 0))
		if log != nil {
			fmt.Fprintf(log, "  [ext-anomaly] %s done\n", det.Name())
		}
	}

	// Supervised reference on identical traffic.
	ev, err := trainEval(p, prep, "lunet", log)
	if err != nil {
		return nil, err
	}
	s := ev.Summary
	s.Design = "supervised: LuNet"
	rows = append(rows, s)
	return rows, nil
}

// RunSignatureStudy measures the signature-based baseline of §VI: rules
// mined from known attacks detect in-distribution attacks but go blind on
// variants (the same generator with a perturbed profile seed — "advanced
// variants of previously known attacks").
func RunSignatureStudy(p Profile, log io.Writer) ([]metrics.Summary, error) {
	cfg, records, _, err := p.DatasetConfig(NSL)
	if err != nil {
		return nil, err
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	train := gen.Generate(records, p.Seed)
	rules, err := signature.MineRules(train, 3)
	if err != nil {
		return nil, err
	}
	eng, err := signature.NewEngine(train.Schema, rules)
	if err != nil {
		return nil, err
	}
	evalSet := func(name string, g *synth.Generator, seed int64) metrics.Summary {
		test := g.Generate(records/3, seed)
		conf := metrics.NewConfusion(2)
		for i := range test.Records {
			r := &test.Records[i]
			actual := 0
			if r.Label != 0 {
				actual = 1
			}
			pred := 0
			if _, ok := eng.Match(r); ok {
				pred = 1
			}
			conf.Add(actual, pred)
		}
		return metrics.Summarize(name, conf, 0)
	}

	rows := []metrics.Summary{evalSet("signatures vs known attacks", gen, p.Seed+1)}

	// Attack variants: same class structure, shifted generative profiles.
	varCfg := cfg
	varCfg.ProfileSeed = cfg.ProfileSeed + 9999
	varGen, err := synth.New(varCfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, evalSet("signatures vs attack variants", varGen, p.Seed+2))
	if log != nil {
		fmt.Fprintf(log, "  [ext-signature] mined %d rules\n", eng.RuleCount())
	}
	return rows, nil
}

// AblationVariant names one ResBlk wiring variant.
type AblationVariant string

// The ablation variants: the paper's design plus the plausible alternatives
// it implicitly rejects (§IV: "the short cut is connected from the BN
// output to facilitate the initialization of overall deep network").
const (
	AblationPaper      AblationVariant = "shortcut-from-BN (paper)"
	AblationFromInput  AblationVariant = "shortcut-from-input"
	AblationNoGRU      AblationVariant = "conv-only body"
	AblationNoConv     AblationVariant = "gru-only body"
	AblationNoShortcut AblationVariant = "no shortcut (plain)"
)

// buildAblationNet assembles a 10-block network with the given block
// variant.
func buildAblationNet(rng, dropRNG *rand.Rand, v AblationVariant, cfg models.BlockConfig, classes int) *nn.Sequential {
	f := cfg.Features
	block := func() nn.Layer {
		switch v {
		case AblationPaper:
			return models.NewResidualBlock(rng, dropRNG, cfg)
		case AblationNoShortcut:
			return models.NewPlainBlock(rng, dropRNG, cfg)
		case AblationFromInput:
			// Residual wraps the WHOLE block including the leading BN.
			return nn.NewResidual(nn.NewSequential(
				nn.NewBatchNorm(f),
				nn.NewConv1D(rng, f, f, cfg.Kernel, nn.PaddingSame),
				nn.NewReLU(),
				nn.NewMaxPool1D(cfg.Pool),
				nn.NewBatchNorm(f),
				nn.NewGRU(rng, f, f, true),
				nn.NewReshape(-1, f),
				nn.NewDropout(dropRNG, cfg.Dropout),
			))
		case AblationNoGRU:
			return nn.NewPreShortcut(nn.NewBatchNorm(f), nn.NewSequential(
				nn.NewConv1D(rng, f, f, cfg.Kernel, nn.PaddingSame),
				nn.NewReLU(),
				nn.NewMaxPool1D(cfg.Pool),
				nn.NewDropout(dropRNG, cfg.Dropout),
			))
		case AblationNoConv:
			return nn.NewPreShortcut(nn.NewBatchNorm(f), nn.NewSequential(
				nn.NewBatchNorm(f),
				nn.NewGRU(rng, f, f, true),
				nn.NewReshape(-1, f),
				nn.NewDropout(dropRNG, cfg.Dropout),
			))
		}
		panic(fmt.Sprintf("experiments: unknown ablation variant %q", v))
	}
	s := nn.NewSequential()
	for i := 0; i < 10; i++ {
		s.Add(block())
	}
	s.Add(nn.NewGlobalAvgPool1D())
	s.Add(nn.NewDense(rng, f, classes))
	return s
}

// AblationVariants lists the studied variants in report order.
var AblationVariants = []AblationVariant{
	AblationPaper, AblationFromInput, AblationNoGRU, AblationNoConv, AblationNoShortcut,
}

// RunAblation trains each ResBlk variant at depth 10 on UNSW-NB15 and
// reports the paper metrics — the design-choice study DESIGN.md calls out.
func RunAblation(p Profile, log io.Writer) ([]metrics.Summary, error) {
	prep, err := prepare(p, UNSW)
	if err != nil {
		return nil, err
	}
	fold := prep.folds[0]
	xTr, yTr := gather(prep.x, prep.y, fold.Train)
	xTe, yTe := gather(prep.x, prep.y, fold.Test)

	var rows []metrics.Summary
	for vi, v := range AblationVariants {
		rng := rand.New(rand.NewSource(p.Seed + int64(vi)*977))
		dropRNG := rand.New(rand.NewSource(p.Seed + int64(vi)*977 + 1))
		cfg := models.PaperBlockConfig(prep.features)
		stack := buildAblationNet(rng, dropRNG, v, cfg, prep.classes)
		opt := nn.NewRMSprop(p.LR)
		opt.MaxNorm = p.GradClip
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
		net.Fit(xTr, yTr, nn.FitConfig{
			Epochs: prep.epochs, BatchSize: p.Batch, Shuffle: true, RNG: rng,
			Verbose: func(st nn.EpochStats) {
				if log != nil {
					fmt.Fprintf(log, "  [ablation %s] epoch %d train_loss=%.4f\n", v, st.Epoch, st.TrainLoss)
				}
			},
		})
		conf := metrics.NewConfusion(prep.classes)
		conf.AddAll(yTe, net.PredictClasses(xTe, p.Batch))
		rows = append(rows, metrics.Summarize(string(v), conf, 0))
	}
	return rows, nil
}
