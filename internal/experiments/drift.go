package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/adapt"
	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// DriftPoint is one drift stage's outcome for both detector families.
type DriftPoint struct {
	// Mix is the fraction of traffic drawn from the drifted distribution.
	Mix float64
	// Supervised is the trained classifier's binary metrics at this stage.
	Supervised metrics.BinaryCounts
	// Anomaly is the normal-profile detector's metrics at this stage.
	Anomaly metrics.BinaryCounts
	// MonitorZ is the largest-magnitude drift statistic an adapt.Monitor
	// reports for this mix against the mix-0 reference (the same windowed
	// z the online adaptation loop trips on), and MonitorSignal names the
	// signal that produced it. MonitorTrip is whether the loop's default
	// thresholds would trigger a retrain at this mix.
	MonitorZ      float64
	MonitorSignal string
	MonitorTrip   bool
}

// DriftResult is the full sweep.
type DriftResult struct {
	Points []DriftPoint
}

// DriftMixes are the evaluated drift fractions: 0 = the training
// distribution, 1 = fully drifted.
var DriftMixes = []float64{0, 0.25, 0.5, 0.75, 1}

// RunDriftStudy quantifies the paper's §VI "Reason two": as the network
// evolves, a fixed notion of normal stops being representative. Both a
// supervised LuNet and a calibrated Gaussian anomaly profile are trained
// on the original distribution, then evaluated on traffic mixes that
// drift toward a shifted-profile domain. The anomaly detector's FAR should
// inflate with drift much faster than the supervised model degrades. Each
// mix is also judged by the online adaptation loop's drift monitor
// (internal/adapt): the reported z statistic and trip verdict show at what
// drift level the closed loop would trigger a retrain.
func RunDriftStudy(p Profile, log io.Writer) (*DriftResult, error) {
	cfg, records, epochs, err := p.DatasetConfig(NSL)
	if err != nil {
		return nil, err
	}
	baseGen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	driftCfg := cfg
	driftCfg.ProfileSeed = cfg.ProfileSeed + 31337
	driftGen, err := synth.New(driftCfg)
	if err != nil {
		return nil, err
	}

	// Train both detectors on the base distribution.
	train := baseGen.Generate(records, p.Seed)
	x, y, pipe := data.Preprocess(train)
	features := baseGen.Schema().EncodedWidth()
	classes := baseGen.Schema().NumClasses()

	rng := rand.New(rand.NewSource(p.Seed + 5))
	stack := models.BuildLuNet(rng, rand.New(rand.NewSource(p.Seed+6)), 2,
		models.PaperBlockConfig(features), classes)
	opt := nn.NewRMSprop(p.LR)
	opt.MaxNorm = p.GradClip
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	if log != nil {
		fmt.Fprintf(log, "  [ext-drift] training supervised detector on %d records\n", x.Dim(0))
	}
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{
		Epochs: epochs, BatchSize: p.Batch, Shuffle: true, RNG: rng,
	})

	var normalRows []int
	for i, yi := range y {
		if yi == 0 {
			normalRows = append(normalRows, i)
		}
	}
	normal := tensor.New(len(normalRows), features)
	for i, j := range normalRows {
		copy(normal.Row(i), x.Row(j))
	}
	profile, err := anomaly.Calibrate(anomaly.NewGaussian(), normal, 0.99)
	if err != nil {
		return nil, err
	}

	// Sweep drift mixes. Alongside the confusion counts, record the
	// supervised detector's per-flow drift observables (score, verdict,
	// raw feature mean) so each mix can also be judged the way the online
	// adaptation loop would judge it.
	res := &DriftResult{}
	testN := records / 4
	obs := make([]driftObs, 0, testN*len(DriftMixes))
	var refObs []driftObs
	for mi, mix := range DriftMixes {
		testRNG := rand.New(rand.NewSource(p.Seed + 100 + int64(mi)))
		supConf := metrics.NewConfusion(2)
		anoConf := metrics.NewConfusion(2)
		obs = obs[:0]
		for i := 0; i < testN; i++ {
			gen := baseGen
			if testRNG.Float64() < mix {
				gen = driftGen
			}
			class := 0
			if testRNG.Float64() < 0.4 {
				class = 1 + testRNG.Intn(classes-1)
			}
			rec := gen.SampleClass(testRNG, class)
			row := pipe.Apply(&rec)
			actual := 0
			if class != 0 {
				actual = 1
			}

			logits := net.Predict(tensor.FromSlice(row, 1, 1, features))
			supCls := logits.ArgmaxRow()[0]
			supPred := 0
			if supCls != 0 {
				supPred = 1
			}
			supConf.Add(actual, supPred)
			obs = append(obs, driftObs{
				score:    logits.Row(0)[supCls],
				isAttack: supPred != 0,
				featMean: meanOf(rec.Numeric),
			})

			anoPred := 0
			if profile.IsAttack(row) {
				anoPred = 1
			}
			anoConf.Add(actual, anoPred)
		}
		pt := DriftPoint{
			Mix:        mix,
			Supervised: supConf.Binary(0),
			Anomaly:    anoConf.Binary(0),
		}
		if mi == 0 {
			// Mix 0 is the reference distribution; its own monitor row is
			// the null comparison of one half against the other.
			refObs = append(refObs, obs...)
			half := len(refObs) / 2
			pt.MonitorSignal, pt.MonitorZ, pt.MonitorTrip = monitorJudgement(refObs[:half], refObs[half:])
		} else {
			pt.MonitorSignal, pt.MonitorZ, pt.MonitorTrip = monitorJudgement(refObs, obs)
		}
		res.Points = append(res.Points, pt)
		if log != nil {
			fmt.Fprintf(log, "  [ext-drift] mix %.2f done\n", mix)
		}
	}
	return res, nil
}

// driftObs is one scored flow's drift observables.
type driftObs struct {
	score    float64
	isAttack bool
	featMean float64
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// monitorJudgement replays ref then cur through the adaptation loop's
// drift signals (verdict-conditioned scores, alert rate, feature mean) and
// returns the strongest signal, its z statistic, and whether the loop's
// default thresholds would trip — the offline study asking exactly the
// question the streaming monitor answers online.
func monitorJudgement(ref, cur []driftObs) (signal string, z float64, trip bool) {
	project := func(obs []driftObs, f func(driftObs) (float64, bool)) []float64 {
		var out []float64
		for _, o := range obs {
			if v, ok := f(o); ok {
				out = append(out, v)
			}
		}
		return out
	}
	const baseThreshold = adapt.DefaultThreshold
	signals := []struct {
		name      string
		threshold float64
		pick      func(driftObs) (float64, bool)
	}{
		// Thresholds mirror the online loop's per-signal scaling
		// (adapt.NewLoop): attack-score 1.5x, alert-rate 2x.
		{"normal-score", baseThreshold, func(o driftObs) (float64, bool) { return o.score, !o.isAttack }},
		{"attack-score", baseThreshold * 1.5, func(o driftObs) (float64, bool) { return o.score, o.isAttack }},
		{"alert-rate", baseThreshold * 2, func(o driftObs) (float64, bool) {
			if o.isAttack {
				return 1, true
			}
			return 0, true
		}},
		{"feature-mean", baseThreshold, func(o driftObs) (float64, bool) { return o.featMean, true }},
	}
	var tripSignal string
	var tripZ float64
	for _, s := range signals {
		r, c := project(ref, s.pick), project(cur, s.pick)
		if len(r) < 8 || len(c) < 8 {
			continue
		}
		m := adapt.NewMonitor(adapt.MonitorConfig{RefWindow: len(r), Window: len(c), Threshold: s.threshold})
		for _, v := range r {
			m.Observe(v)
		}
		for _, v := range c {
			m.Observe(v)
		}
		zs := m.Stat()
		if math.Abs(zs) > math.Abs(z) {
			signal, z = s.name, zs
		}
		if math.Abs(zs) > s.threshold && math.Abs(zs) > math.Abs(tripZ) {
			tripSignal, tripZ = s.name, zs
		}
	}
	// When a trip happened, attribute it to the strongest signal that
	// actually crossed its own threshold (thresholds differ per signal, so
	// the overall-max signal may not be the tripping one).
	if tripSignal != "" {
		return tripSignal, tripZ, true
	}
	return signal, z, false
}

// FormatDrift renders the sweep.
func FormatDrift(res *DriftResult) string {
	out := "EXT: DETECTOR BEHAVIOUR UNDER TRAFFIC DRIFT (paper §VI \"Reason two\")\n"
	out += fmt.Sprintf("%8s %28s %28s %22s\n", "", "supervised (LuNet)", "anomaly (gaussian)", "adapt monitor")
	out += fmt.Sprintf("%8s %9s %9s %8s %9s %9s %8s %8s %13s\n",
		"drift", "DR%", "FAR%", "ACC%", "DR%", "FAR%", "ACC%", "|z|", "trip?")
	for _, pt := range res.Points {
		trip := ""
		if pt.MonitorTrip {
			trip = "RETRAIN (" + pt.MonitorSignal + ")"
		}
		out += fmt.Sprintf("%8.2f %9.2f %9.2f %8.2f %9.2f %9.2f %8.2f %8.1f %13s\n",
			pt.Mix,
			pt.Supervised.DR()*100, pt.Supervised.FAR()*100, pt.Supervised.ACC()*100,
			pt.Anomaly.DR()*100, pt.Anomaly.FAR()*100, pt.Anomaly.ACC()*100,
			math.Abs(pt.MonitorZ), trip)
	}
	return out
}
