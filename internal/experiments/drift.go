package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// DriftPoint is one drift stage's outcome for both detector families.
type DriftPoint struct {
	// Mix is the fraction of traffic drawn from the drifted distribution.
	Mix float64
	// Supervised is the trained classifier's binary metrics at this stage.
	Supervised metrics.BinaryCounts
	// Anomaly is the normal-profile detector's metrics at this stage.
	Anomaly metrics.BinaryCounts
}

// DriftResult is the full sweep.
type DriftResult struct {
	Points []DriftPoint
}

// DriftMixes are the evaluated drift fractions: 0 = the training
// distribution, 1 = fully drifted.
var DriftMixes = []float64{0, 0.25, 0.5, 0.75, 1}

// RunDriftStudy quantifies the paper's §VI "Reason two": as the network
// evolves, a fixed notion of normal stops being representative. Both a
// supervised LuNet and a calibrated Gaussian anomaly profile are trained
// on the original distribution, then evaluated on traffic mixes that
// drift toward a shifted-profile domain. The anomaly detector's FAR should
// inflate with drift much faster than the supervised model degrades.
func RunDriftStudy(p Profile, log io.Writer) (*DriftResult, error) {
	cfg, records, epochs, err := p.DatasetConfig(NSL)
	if err != nil {
		return nil, err
	}
	baseGen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	driftCfg := cfg
	driftCfg.ProfileSeed = cfg.ProfileSeed + 31337
	driftGen, err := synth.New(driftCfg)
	if err != nil {
		return nil, err
	}

	// Train both detectors on the base distribution.
	train := baseGen.Generate(records, p.Seed)
	x, y, pipe := data.Preprocess(train)
	features := baseGen.Schema().EncodedWidth()
	classes := baseGen.Schema().NumClasses()

	rng := rand.New(rand.NewSource(p.Seed + 5))
	stack := models.BuildLuNet(rng, rand.New(rand.NewSource(p.Seed+6)), 2,
		models.PaperBlockConfig(features), classes)
	opt := nn.NewRMSprop(p.LR)
	opt.MaxNorm = p.GradClip
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	if log != nil {
		fmt.Fprintf(log, "  [ext-drift] training supervised detector on %d records\n", x.Dim(0))
	}
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{
		Epochs: epochs, BatchSize: p.Batch, Shuffle: true, RNG: rng,
	})

	var normalRows []int
	for i, yi := range y {
		if yi == 0 {
			normalRows = append(normalRows, i)
		}
	}
	normal := tensor.New(len(normalRows), features)
	for i, j := range normalRows {
		copy(normal.Row(i), x.Row(j))
	}
	profile, err := anomaly.Calibrate(anomaly.NewGaussian(), normal, 0.99)
	if err != nil {
		return nil, err
	}

	// Sweep drift mixes.
	res := &DriftResult{}
	testN := records / 4
	for mi, mix := range DriftMixes {
		testRNG := rand.New(rand.NewSource(p.Seed + 100 + int64(mi)))
		supConf := metrics.NewConfusion(2)
		anoConf := metrics.NewConfusion(2)
		for i := 0; i < testN; i++ {
			gen := baseGen
			if testRNG.Float64() < mix {
				gen = driftGen
			}
			class := 0
			if testRNG.Float64() < 0.4 {
				class = 1 + testRNG.Intn(classes-1)
			}
			rec := gen.SampleClass(testRNG, class)
			row := pipe.Apply(&rec)
			actual := 0
			if class != 0 {
				actual = 1
			}

			logits := net.Predict(tensor.FromSlice(row, 1, 1, features))
			supPred := 0
			if logits.ArgmaxRow()[0] != 0 {
				supPred = 1
			}
			supConf.Add(actual, supPred)

			anoPred := 0
			if profile.IsAttack(row) {
				anoPred = 1
			}
			anoConf.Add(actual, anoPred)
		}
		res.Points = append(res.Points, DriftPoint{
			Mix:        mix,
			Supervised: supConf.Binary(0),
			Anomaly:    anoConf.Binary(0),
		})
		if log != nil {
			fmt.Fprintf(log, "  [ext-drift] mix %.2f done\n", mix)
		}
	}
	return res, nil
}

// FormatDrift renders the sweep.
func FormatDrift(res *DriftResult) string {
	out := "EXT: DETECTOR BEHAVIOUR UNDER TRAFFIC DRIFT (paper §VI \"Reason two\")\n"
	out += fmt.Sprintf("%8s %28s %28s\n", "", "supervised (LuNet)", "anomaly (gaussian)")
	out += fmt.Sprintf("%8s %9s %9s %8s %9s %9s %8s\n",
		"drift", "DR%", "FAR%", "ACC%", "DR%", "FAR%", "ACC%")
	for _, pt := range res.Points {
		out += fmt.Sprintf("%8.2f %9.2f %9.2f %8.2f %9.2f %9.2f %8.2f\n",
			pt.Mix,
			pt.Supervised.DR()*100, pt.Supervised.FAR()*100, pt.Supervised.ACC()*100,
			pt.Anomaly.DR()*100, pt.Anomaly.FAR()*100, pt.Anomaly.ACC()*100)
	}
	return out
}
