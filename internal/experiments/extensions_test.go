package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunAnomalyComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rows, err := RunAnomalyComparison(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (gaussian, knn, supervised)", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Design] = true
	}
	for _, want := range []string{"anomaly: gaussian-profile", "anomaly: knn-5", "supervised: LuNet"} {
		if !names[want] {
			t.Fatalf("missing row %q in %v", want, names)
		}
	}
}

func TestRunSignatureStudySmoke(t *testing.T) {
	rows, err := RunSignatureStudy(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	known, variants := rows[0], rows[1]
	if !strings.Contains(known.Design, "known") || !strings.Contains(variants.Design, "variants") {
		t.Fatalf("unexpected row names: %q, %q", known.Design, variants.Design)
	}
	// The §VI claim: signatures degrade on variants. (Smoke-scale noise can
	// be large, so only require non-trivial detection on known attacks.)
	if known.DR <= 0 {
		t.Fatalf("signature engine detected nothing on known attacks: %+v", known)
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rows, err := RunAblation(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants) {
		t.Fatalf("got %d rows, want %d", len(rows), len(AblationVariants))
	}
	for _, r := range rows {
		if r.ACC < 0 || r.ACC > 100 {
			t.Fatalf("%s: ACC %v out of range", r.Design, r.ACC)
		}
	}
}

func TestRunTransferSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	res, err := RunTransfer(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range []float64{res.ScratchACC, res.TransferACC, res.SourceACC} {
		if acc < 0 || acc > 100 {
			t.Fatalf("ACC out of range: %+v", res)
		}
	}
	if res.TargetRecords <= 0 {
		t.Fatalf("bad target record count: %d", res.TargetRecords)
	}
	out := FormatTransfer(res)
	if !strings.Contains(out, "TRANSFER LEARNING") || !strings.Contains(out, "fine-tuned") {
		t.Fatalf("format missing content:\n%s", out)
	}
}

func TestRunTable5ExtendedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	res, err := RunTable5Extended(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table5XDesigns) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(Table5XDesigns))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r.Design] = true
	}
	for _, want := range []string{"Logistic Regression", "Naive Bayes", "k-NN (k=5)"} {
		if !names[want] {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
	if out := FormatTable5Extended(res); !strings.Contains(out, "TABLE Vx") {
		t.Fatalf("bad formatting:\n%s", out)
	}
}

func TestRunDriftStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	res, err := RunDriftStudy(SmokeProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(DriftMixes) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(DriftMixes))
	}
	for _, pt := range res.Points {
		total := pt.Supervised.TP + pt.Supervised.FP + pt.Supervised.TN + pt.Supervised.FN
		if total == 0 {
			t.Fatalf("drift point %v evaluated nothing", pt.Mix)
		}
	}
	// The streaming monitor's judgement must strengthen with drift: the
	// fully drifted mix reads a (much) larger statistic than the null
	// comparison at mix 0.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if math.Abs(last.MonitorZ) <= math.Abs(first.MonitorZ) {
		t.Fatalf("monitor z did not grow with drift: mix0 %.2f vs mix1 %.2f", first.MonitorZ, last.MonitorZ)
	}
	if out := FormatDrift(res); !strings.Contains(out, "DRIFT") {
		t.Fatalf("bad formatting:\n%s", out)
	}
}
