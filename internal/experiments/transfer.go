package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// TransferResult compares training from scratch on scarce target data
// against pretraining on a related source domain and fine-tuning — the
// mitigation for training-data insufficiency the paper discusses in §V-G
// and the authors explored in their transfer-learning work [16].
type TransferResult struct {
	TargetRecords int
	ScratchACC    float64
	TransferACC   float64
	SourceACC     float64 // source-pretrained model applied directly (no fine-tune)
}

// RunTransfer pretrains Residual-21 on a large draw of the NSL-shaped
// source domain, then adapts it to an attack-variant target domain (same
// schema, shifted class profiles) with only a small labeled sample —
// versus training from scratch on that sample.
func RunTransfer(p Profile, log io.Writer) (*TransferResult, error) {
	cfg, records, epochs, err := p.DatasetConfig(NSL)
	if err != nil {
		return nil, err
	}
	srcGen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	varCfg := cfg
	varCfg.ProfileSeed = cfg.ProfileSeed + 4242 // the "new attack variants"
	tgtGen, err := synth.New(varCfg)
	if err != nil {
		return nil, err
	}

	// Source: plentiful labeled data. Target: scarce labels + a test set.
	targetRecords := records / 10
	srcDS := srcGen.Generate(records, p.Seed)
	tgtTrainDS := tgtGen.Generate(targetRecords, p.Seed+1)
	tgtTestDS := tgtGen.Generate(records/3, p.Seed+2)

	// One shared preprocessing pipeline fitted on source (the deployed
	// encoder/scaler — the target domain reuses it, as a real system would).
	xSrc, ySrc, pipe := data.Preprocess(srcDS)
	encode := func(ds *data.Dataset) (*tensor.Tensor, []int) {
		x := tensor.New(ds.Len(), pipe.Enc.Width())
		y := make([]int, ds.Len())
		for i := range ds.Records {
			row := pipe.Apply(&ds.Records[i])
			copy(x.Row(i), row)
			y[i] = ds.Records[i].Label
		}
		return x.Reshape(ds.Len(), 1, pipe.Enc.Width()), y
	}
	xTgtTr, yTgtTr := encode(tgtTrainDS)
	xTgtTe, yTgtTe := encode(tgtTestDS)
	xSrc3 := xSrc.Reshape(xSrc.Dim(0), 1, xSrc.Dim(1))

	features := srcGen.Schema().EncodedWidth()
	classes := srcGen.Schema().NumClasses()
	build := func(seed int64) *nn.Network {
		rng := rand.New(rand.NewSource(seed))
		stack := models.BuildResidual21(rng, rand.New(rand.NewSource(seed+1)),
			models.PaperBlockConfig(features), classes)
		opt := nn.NewRMSprop(p.LR)
		opt.MaxNorm = p.GradClip
		return nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	}
	accOn := func(net *nn.Network) float64 {
		conf := metrics.NewConfusion(classes)
		conf.AddAll(yTgtTe, net.PredictClasses(xTgtTe, p.Batch))
		return conf.Binary(0).ACC() * 100
	}
	fitCfg := func(rng *rand.Rand, ep int) nn.FitConfig {
		return nn.FitConfig{Epochs: ep, BatchSize: p.Batch, Shuffle: true, RNG: rng}
	}

	// 1. Pretrain on source.
	pre := build(p.Seed)
	rng := rand.New(rand.NewSource(p.Seed + 7))
	if log != nil {
		fmt.Fprintf(log, "  [ext-transfer] pretraining on %d source records\n", xSrc.Dim(0))
	}
	pre.Fit(xSrc3, ySrc, fitCfg(rng, epochs))
	srcACC := accOn(pre)

	// 2. Fine-tune a copy on the scarce target sample. The copy is made by
	// a checkpoint round trip so the pretrained model remains intact.
	var buf bytes.Buffer
	if err := pre.Save(&buf); err != nil {
		return nil, err
	}
	tuned := build(p.Seed + 100)
	if err := tuned.Load(&buf); err != nil {
		return nil, err
	}
	tuned.Fit(xTgtTr, yTgtTr, fitCfg(rng, maxEpochs(epochs/2, 2)))
	transferACC := accOn(tuned)

	// 3. From-scratch baseline on the same scarce sample.
	scratch := build(p.Seed + 200)
	scratch.Fit(xTgtTr, yTgtTr, fitCfg(rng, maxEpochs(epochs/2, 2)))
	scratchACC := accOn(scratch)

	return &TransferResult{
		TargetRecords: targetRecords,
		ScratchACC:    scratchACC,
		TransferACC:   transferACC,
		SourceACC:     srcACC,
	}, nil
}

func maxEpochs(a, floor int) int {
	if a < floor {
		return floor
	}
	return a
}

// FormatTransfer renders the comparison.
func FormatTransfer(r *TransferResult) string {
	return fmt.Sprintf(
		"EXT: TRANSFER LEARNING UNDER DATA DEFICIENCY (paper §V-G, ref [16])\n"+
			"target domain: attack variants; labeled target records: %d\n"+
			"%-44s %8s\n%-44s %8.2f\n%-44s %8.2f\n%-44s %8.2f\n",
		r.TargetRecords,
		"Strategy", "ACC%",
		"source model applied directly (no adaptation)", r.SourceACC,
		"trained from scratch on scarce target data", r.ScratchACC,
		"pretrained on source + fine-tuned on target", r.TransferACC)
}
