package experiments

import (
	"strings"
	"testing"
)

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"paper", "default", "smoke"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile name %q, want %q", p.Name, name)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	// Empty name defaults.
	p, err := ProfileByName("")
	if err != nil || p.Name != "default" {
		t.Fatalf("empty name → %q, %v", p.Name, err)
	}
}

func TestPaperProfileMatchesTableI(t *testing.T) {
	p := PaperProfile()
	if p.Batch != 4000 || p.LR != 0.01 || p.Folds != 10 {
		t.Fatalf("paper profile %+v does not match Table I", p)
	}
	_, unswRecords, unswEpochs, err := p.DatasetConfig(UNSW)
	if err != nil {
		t.Fatal(err)
	}
	if unswRecords != 257673 || unswEpochs != 100 {
		t.Fatalf("UNSW paper setting %d records / %d epochs, want 257673 / 100", unswRecords, unswEpochs)
	}
	_, nslRecords, nslEpochs, err := p.DatasetConfig(NSL)
	if err != nil {
		t.Fatal(err)
	}
	if nslRecords != 148516 || nslEpochs != 50 {
		t.Fatalf("NSL paper setting %d records / %d epochs, want 148516 / 50", nslRecords, nslEpochs)
	}
}

func TestDatasetConfigUnknown(t *testing.T) {
	if _, _, _, err := DefaultProfile().DatasetConfig("kdd99"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPrepareSmoke(t *testing.T) {
	p := SmokeProfile()
	prep, err := prepare(p, NSL)
	if err != nil {
		t.Fatal(err)
	}
	if prep.x.Dim(0) != p.Records {
		t.Fatalf("prepared %d rows, want %d", prep.x.Dim(0), p.Records)
	}
	if prep.features != prep.x.Dim(1) {
		t.Fatalf("feature count mismatch %d vs %d", prep.features, prep.x.Dim(1))
	}
	if len(prep.folds) != 1 {
		t.Fatalf("smoke profile should make 1 fold, got %d", len(prep.folds))
	}
	tr, te := len(prep.folds[0].Train), len(prep.folds[0].Test)
	if tr+te != p.Records {
		t.Fatalf("fold covers %d records, want %d", tr+te, p.Records)
	}
}

func TestRunFourNetsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	p := SmokeProfile()
	res, err := RunFourNets(p, NSL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 4 {
		t.Fatalf("got %d evals, want 4", len(res.Evals))
	}
	for _, ev := range res.Evals {
		if ev.Confusion.Total() == 0 {
			t.Fatalf("%s: empty confusion matrix", ev.Design)
		}
		if len(ev.Curve.Train) != 2 {
			t.Fatalf("%s: %d curve points, want 2", ev.Design, len(ev.Curve.Train))
		}
		if ev.Summary.ACC < 0 || ev.Summary.ACC > 100 {
			t.Fatalf("%s: ACC %v out of range", ev.Design, ev.Summary.ACC)
		}
		if ev.Params == 0 {
			t.Fatalf("%s: zero parameters", ev.Design)
		}
	}
	// Formatting must mention every design and produce epoch rows.
	t2 := FormatTable2(res, res)
	if !strings.Contains(t2, "TP") || !strings.Contains(t2, "Pelican") {
		t.Fatalf("Table II formatting missing content:\n%s", t2)
	}
	t34 := FormatTable34(res)
	if !strings.Contains(t34, "Plain-21") {
		t.Fatalf("Table III/IV formatting missing rows:\n%s", t34)
	}
	fig5 := FormatFig5(res, "train")
	if !strings.Contains(fig5, "epoch") {
		t.Fatalf("Fig. 5 formatting broken:\n%s", fig5)
	}
}

func TestRunFig2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	p := SmokeProfile()
	// Trim the sweep for the smoke test.
	old := Fig2Depths
	Fig2Depths = []int{1, 2}
	defer func() { Fig2Depths = old }()

	res, err := RunFig2(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if res.Points[0].ParamLayers != 5 || res.Points[1].ParamLayers != 9 {
		t.Fatalf("param layers %v", res.Points)
	}
	out := FormatFig2(res)
	if !strings.Contains(out, "param-layers") {
		t.Fatalf("Fig. 2 formatting broken:\n%s", out)
	}
}

func TestDegradationOnset(t *testing.T) {
	pts := []DepthPoint{
		{ParamLayers: 5, TrainAcc: 0.70},
		{ParamLayers: 13, TrainAcc: 0.78},
		{ParamLayers: 21, TrainAcc: 0.75},
		{ParamLayers: 41, TrainAcc: 0.71},
	}
	if got := DegradationOnset(pts); got != 13 {
		t.Fatalf("onset = %d, want 13", got)
	}
	mono := []DepthPoint{
		{ParamLayers: 5, TrainAcc: 0.7},
		{ParamLayers: 9, TrainAcc: 0.8},
	}
	if got := DegradationOnset(mono); got != -1 {
		t.Fatalf("monotone onset = %d, want -1", got)
	}
}

func TestRunTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	p := SmokeProfile()
	res, err := RunTable5(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table5Designs) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(Table5Designs))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r.Design] = true
		if r.ACC < 0 || r.ACC > 100 || r.FAR < 0 || r.FAR > 100 {
			t.Fatalf("%s: metrics out of range: %+v", r.Design, r)
		}
	}
	for _, want := range []string{"AdaBoost", "SVM (RBF)", "RF", "Pelican", "LuNet"} {
		if !names[want] {
			t.Fatalf("Table V missing design %q; have %v", want, names)
		}
	}
	out := FormatTable5(res)
	if !strings.Contains(out, "TABLE V") {
		t.Fatalf("Table V formatting broken:\n%s", out)
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1(SmokeProfile())
	for _, want := range []string{"Kernel size", "Dropout rate", "Batch size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
	// The paper profile must echo the exact Table I values.
	paper := FormatTable1(PaperProfile())
	for _, want := range []string{"196", "121", "4000", "0.01", "0.6"} {
		if !strings.Contains(paper, want) {
			t.Fatalf("paper Table I missing %q:\n%s", want, paper)
		}
	}
}
