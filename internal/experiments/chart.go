package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of an ASCII chart.
type Series struct {
	Name   string
	Points []float64
}

// AsciiChart renders series as a fixed-size terminal plot, used by
// pelican-bench to show the Fig. 2 / Fig. 5 curves without a plotting
// stack. Each series gets a distinct marker; the y-axis is shared.
func AsciiChart(title, xlabel string, width, height int, series []Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Global y-range across series.
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Points {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Points {
			var col int
			if maxLen == 1 {
				col = 0
			} else {
				col = i * (width - 1) / (maxLen - 1)
			}
			rowF := (v - lo) / (hi - lo) // 0 at bottom
			row := height - 1 - int(rowF*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.4f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(rowBytes)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteString(xlabel)
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// ChartFig5 renders one Fig. 5 panel as an ASCII chart.
func ChartFig5(res *FourNetResult, kind string) string {
	series := make([]Series, 0, len(res.Evals))
	for _, ev := range res.Evals {
		pts := ev.Curve.Train
		if kind == "test" {
			pts = ev.Curve.Test
		}
		series = append(series, Series{Name: displayName(ev.Design), Points: pts})
	}
	title := fmt.Sprintf("Fig. 5 — %s loss vs epoch on %s", kind, res.Dataset)
	return AsciiChart(title, "epochs →", 60, 16, series)
}

// ChartFig2 renders the Fig. 2 accuracy-vs-depth sweep as an ASCII chart.
func ChartFig2(res *Fig2Result) string {
	train := Series{Name: "training accuracy"}
	test := Series{Name: "testing accuracy"}
	for _, pt := range res.Points {
		train.Points = append(train.Points, pt.TrainAcc)
		test.Points = append(test.Points, pt.TestAcc)
	}
	title := fmt.Sprintf("Fig. 2 — LuNet accuracy vs depth on %s", res.Dataset)
	return AsciiChart(title, "parameter layers →", 60, 14, []Series{train, test})
}
