package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/models"
	"repro/internal/nn"
)

// DepthPoint is one point of the Fig. 2 sweep: LuNet trained at a given
// depth, reporting final training and testing accuracy.
type DepthPoint struct {
	Blocks      int
	ParamLayers int
	TrainAcc    float64
	TestAcc     float64
}

// Fig2Result is the full degradation sweep.
type Fig2Result struct {
	Dataset DatasetID
	Points  []DepthPoint
}

// Fig2Depths are the block counts swept by default; their parameter-layer
// counts (5, 9, ..., 41) cover the paper's 5–40 x-axis.
var Fig2Depths = []int{1, 2, 3, 5, 7, 10}

// RunFig2 reproduces Fig. 2: train LuNet (the plain CNN+GRU network) at
// increasing depth on UNSW-NB15 and record train/test accuracy. The paper's
// observation — accuracy stops improving and then degrades as plain depth
// grows — is the motivation for residual learning.
func RunFig2(p Profile, log io.Writer) (*Fig2Result, error) {
	prep, err := prepare(p, UNSW)
	if err != nil {
		return nil, err
	}
	fold := prep.folds[0]
	xTr, yTr := gather(prep.x, prep.y, fold.Train)
	xTe, yTe := gather(prep.x, prep.y, fold.Test)

	res := &Fig2Result{Dataset: UNSW}
	for _, blocks := range Fig2Depths {
		rng := rand.New(rand.NewSource(p.Seed + int64(blocks)*31))
		dropRNG := rand.New(rand.NewSource(p.Seed + int64(blocks)*31 + 1))
		cfg := models.PaperBlockConfig(prep.features)
		stack := models.BuildLuNet(rng, dropRNG, blocks, cfg, prep.classes)
		opt := nn.NewRMSprop(p.LR)
		opt.MaxNorm = p.GradClip
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)

		var last nn.EpochStats
		net.Fit(xTr, yTr, nn.FitConfig{
			Epochs:     prep.epochs,
			BatchSize:  p.Batch,
			Shuffle:    true,
			RNG:        rng,
			TestX:      xTe,
			TestLabels: yTe,
			Verbose: func(st nn.EpochStats) {
				last = st
				if log != nil {
					fmt.Fprintf(log, "  [fig2 blocks=%d] epoch %d/%d train_acc=%.4f test_acc=%.4f\n",
						blocks, st.Epoch, prep.epochs, st.TrainAcc, st.TestAcc)
				}
			},
		})
		res.Points = append(res.Points, DepthPoint{
			Blocks:      blocks,
			ParamLayers: models.ParamLayersForBlocks(blocks),
			TrainAcc:    last.TrainAcc,
			TestAcc:     last.TestAcc,
		})
	}
	return res, nil
}

// FormatFig2 renders the sweep as the two series of Fig. 2(a)/(b).
func FormatFig2(res *Fig2Result) string {
	out := fmt.Sprintf("Fig. 2: LuNet accuracy vs depth on %s\n", res.Dataset)
	out += fmt.Sprintf("%12s %12s %12s %12s\n", "blocks", "param-layers", "train-acc", "test-acc")
	for _, pt := range res.Points {
		out += fmt.Sprintf("%12d %12d %12.4f %12.4f\n", pt.Blocks, pt.ParamLayers, pt.TrainAcc, pt.TestAcc)
	}
	return out
}

// DegradationOnset returns the parameter-layer count after which training
// accuracy stopped improving (the "beginning of degradation" annotation in
// Fig. 2), or -1 if accuracy improved monotonically.
func DegradationOnset(points []DepthPoint) int {
	bestAcc := -1.0
	bestLayers := -1
	for _, pt := range points {
		if pt.TrainAcc > bestAcc {
			bestAcc = pt.TrainAcc
			bestLayers = pt.ParamLayers
		}
	}
	if len(points) > 0 && bestLayers == points[len(points)-1].ParamLayers {
		return -1 // still improving at max depth
	}
	return bestLayers
}
