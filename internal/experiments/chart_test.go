package experiments

import (
	"strings"
	"testing"
)

func TestAsciiChartBasics(t *testing.T) {
	out := AsciiChart("title", "x →", 40, 10, []Series{
		{Name: "up", Points: []float64{0, 1, 2, 3}},
		{Name: "down", Points: []float64{3, 2, 1, 0}},
	})
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "3.0000") || !strings.Contains(out, "0.0000") {
		t.Fatalf("missing y-axis labels:\n%s", out)
	}
	// Both markers must appear in the grid.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatalf("missing series markers:\n%s", out)
	}
}

func TestAsciiChartEmpty(t *testing.T) {
	out := AsciiChart("t", "x", 40, 10, nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart should say so:\n%s", out)
	}
}

func TestAsciiChartConstantSeries(t *testing.T) {
	// A flat line must not divide by zero.
	out := AsciiChart("t", "x", 30, 8, []Series{{Name: "flat", Points: []float64{5, 5, 5}}})
	if !strings.Contains(out, "flat") {
		t.Fatal("flat series lost")
	}
}

func TestAsciiChartSinglePoint(t *testing.T) {
	out := AsciiChart("t", "x", 30, 8, []Series{{Name: "dot", Points: []float64{1}}})
	if !strings.ContainsRune(out, '*') {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestAsciiChartClampsTinyDimensions(t *testing.T) {
	out := AsciiChart("t", "x", 1, 1, []Series{{Name: "s", Points: []float64{1, 2}}})
	if out == "" {
		t.Fatal("chart with tiny dimensions empty")
	}
}

func TestChartFig2Renders(t *testing.T) {
	res := &Fig2Result{Dataset: UNSW, Points: []DepthPoint{
		{ParamLayers: 5, TrainAcc: 0.7, TestAcc: 0.65},
		{ParamLayers: 21, TrainAcc: 0.8, TestAcc: 0.72},
		{ParamLayers: 41, TrainAcc: 0.75, TestAcc: 0.69},
	}}
	out := ChartFig2(res)
	if !strings.Contains(out, "Fig. 2") || !strings.Contains(out, "parameter layers") {
		t.Fatalf("Fig. 2 chart malformed:\n%s", out)
	}
}

func TestChartFig5Renders(t *testing.T) {
	res := &FourNetResult{Dataset: NSL, Evals: []*NetEval{
		{Design: "plain-21", Curve: LossCurve{Train: []float64{0.9, 0.5, 0.3}, Test: []float64{1, 0.6, 0.4}}},
		{Design: "pelican", Curve: LossCurve{Train: []float64{0.8, 0.4, 0.2}, Test: []float64{0.9, 0.5, 0.3}}},
	}}
	for _, kind := range []string{"train", "test"} {
		out := ChartFig5(res, kind)
		if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "Pelican") {
			t.Fatalf("Fig. 5 %s chart malformed:\n%s", kind, out)
		}
	}
}
