package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// Table5Designs are the compared designs in the paper's Table V order
// (worst to best as the paper lists them).
var Table5Designs = []string{
	"adaboost", "svm-rbf", "hast-ids", "cnn", "lstm", "mlp", "rf", "lunet", "pelican",
}

// table5DisplayName maps design ids to the paper's labels.
func table5DisplayName(id string) string {
	switch id {
	case "adaboost":
		return "AdaBoost"
	case "svm-rbf":
		return "SVM (RBF)"
	case "hast-ids":
		return "HAST-IDS"
	case "cnn":
		return "CNN"
	case "lstm":
		return "LSTM"
	case "mlp":
		return "MLP"
	case "rf":
		return "RF"
	case "lunet":
		return "LuNet"
	case "pelican":
		return "Pelican"
	}
	return id
}

// classicalBaseline builds the non-neural classifiers of §V-H.
func classicalBaseline(id string, classes int, seed int64) (ml.Classifier, bool) {
	switch id {
	case "adaboost":
		return ml.NewAdaBoost(ml.AdaBoostConfig{Rounds: 50, StumpDepth: 1, Classes: classes, Seed: seed}), true
	case "rf":
		return ml.NewForest(ml.ForestConfig{Trees: 100, MaxDepth: 16, Classes: classes, Seed: seed}), true
	case "svm-rbf":
		return ml.NewSVM(ml.SVMConfig{C: 1, Classes: classes, Subsample: 2500, Seed: seed}), true
	}
	return nil, false
}

// Table5Result is the comparative study's outcome.
type Table5Result struct {
	Dataset DatasetID
	Rows    []metrics.Summary
}

// RunTable5 reproduces Table V: train every design — three classical ML
// baselines and six neural designs — on UNSW-NB15 and report DR/ACC/FAR.
func RunTable5(p Profile, log io.Writer) (*Table5Result, error) {
	prep, err := prepare(p, UNSW)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{Dataset: UNSW}
	for _, id := range Table5Designs {
		if clf, ok := classicalBaseline(id, prep.classes, p.Seed); ok {
			summary, err := evalClassical(p, prep, id, clf, log)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			res.Rows = append(res.Rows, summary)
			continue
		}
		ev, err := trainEval(p, prep, id, log)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		s := ev.Summary
		s.Design = table5DisplayName(id)
		res.Rows = append(res.Rows, s)
	}
	return res, nil
}

// evalClassical fits a classical classifier on each fold's rank-2 features.
func evalClassical(p Profile, prep *prepared, id string, clf ml.Classifier, log io.Writer) (metrics.Summary, error) {
	conf := metrics.NewConfusion(prep.classes)
	for fi, fold := range prep.folds {
		// Re-seed per fold so CV folds are independent fits.
		if fi > 0 {
			if c, ok := classicalBaseline(id, prep.classes, p.Seed+int64(fi)); ok {
				clf = c
			}
		}
		xTr, yTr := gatherFlat(prep.x, prep.y, fold.Train)
		xTe, yTe := gatherFlat(prep.x, prep.y, fold.Test)
		if log != nil {
			fmt.Fprintf(log, "  [%s/%s fold %d] fitting on %d records\n", prep.id, id, fi, xTr.Dim(0))
		}
		if err := clf.Fit(xTr, yTr); err != nil {
			return metrics.Summary{}, err
		}
		conf.AddAll(yTe, clf.Predict(xTe))
	}
	return metrics.Summarize(table5DisplayName(id), conf, 0), nil
}

// gatherFlat copies rows into a rank-2 tensor for classical classifiers.
func gatherFlat(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int) {
	f := x.Dim(1)
	out := tensor.New(len(idx), f)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(out.Row(i), x.Row(j))
		labels[i] = y[j]
	}
	return out, labels
}

// FormatTable5 renders the paper's Table V layout.
func FormatTable5(res *Table5Result) string {
	return metrics.FormatTable(
		"TABLE V: A COMPARISON OF PELICAN'S PERFORMANCE WITH CLASSICAL TECHNIQUES (BASED ON UNSW-NB15)",
		res.Rows)
}

// FormatTable1 echoes the paper's Table I parameter settings for the
// active profile, annotating which values the profile scales down.
func FormatTable1(p Profile) string {
	type row struct{ name, unsw, nsl string }
	unswCfg, unswRecords, unswEpochs, _ := p.DatasetConfig(UNSW)
	nslCfg, nslRecords, nslEpochs, _ := p.DatasetConfig(NSL)
	unswWidth := synth.MustNew(unswCfg).Schema().EncodedWidth()
	nslWidth := synth.MustNew(nslCfg).Schema().EncodedWidth()
	rows := []row{
		{"Filter size", fmt.Sprint(unswWidth), fmt.Sprint(nslWidth)},
		{"Kernel size", "10", "10"},
		{"Recurrent unit", fmt.Sprint(unswWidth), fmt.Sprint(nslWidth)},
		{"Dropout rate", "0.6", "0.6"},
		{"Epochs", fmt.Sprint(unswEpochs), fmt.Sprint(nslEpochs)},
		{"Learning rate", fmt.Sprint(p.LR), fmt.Sprint(p.LR)},
		{"Batch size", fmt.Sprint(p.Batch), fmt.Sprint(p.Batch)},
		{"Records", fmt.Sprint(unswRecords), fmt.Sprint(nslRecords)},
	}
	out := fmt.Sprintf("TABLE I: PARAMETER SETTING (profile %q)\n", p.Name)
	out += fmt.Sprintf("%-16s %12s %12s\n", "Category", "UNSW-NB15", "NSL-KDD")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %12s %12s\n", r.name, r.unsw, r.nsl)
	}
	return out
}
