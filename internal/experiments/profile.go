// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): Fig. 2 (depth-degradation sweep), Fig. 5 (loss curves),
// Table II (TP/FP), Tables III/IV (DR/ACC/FAR for the four networks) and
// Table V (the comparative study), plus the extension experiments DESIGN.md
// calls out (anomaly-detection FAR comparison, shortcut-placement
// ablation).
//
// Experiments run under a Profile that scales the workload: "paper"
// replicates Table I exactly (full record counts, 50/100 epochs — hours of
// CPU time in pure Go), "default" is the scaled profile EXPERIMENTS.md
// records results from, and "smoke" is a tiny shape used by unit tests and
// testing.B benchmarks.
package experiments

import (
	"fmt"

	"repro/internal/synth"
)

// Profile scales an experiment's workload without changing its structure.
type Profile struct {
	Name string
	// Records drawn per dataset (0 = the paper's full counts).
	Records int
	// EpochsUNSW / EpochsNSL cap training epochs (0 = Table I: 100 / 50).
	EpochsUNSW int
	EpochsNSL  int
	// Batch is the minibatch size (paper: 4000).
	Batch int
	// LR is the RMSprop learning rate (paper: 0.01).
	LR float64
	// Folds >= 2 runs k-fold cross-validation (paper: 10); Folds == 1 uses
	// a single stratified split with TestFrac held out.
	Folds    int
	TestFrac float64
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Tiny switches to miniature dataset shapes (fewer features/classes)
	// so unit tests and benchmarks finish in seconds.
	Tiny bool
	// GradClip caps the global gradient norm; 0 disables. The scaled
	// profiles clip at 5 to keep small-batch RMSprop stable (the paper's
	// batch of 4000 smooths gradients instead).
	GradClip float64
}

// PaperProfile replicates the paper's Table I settings exactly.
func PaperProfile() Profile {
	return Profile{
		Name:  "paper",
		Batch: 4000, LR: 0.01,
		Folds: 10,
		Seed:  1,
	}
}

// DefaultProfile is the scaled profile used for the recorded results:
// same architectures and optimizer, smaller sample counts and epochs so
// the full suite completes on a CPU in tens of minutes.
func DefaultProfile() Profile {
	// The learning rate is square-root-scaled from the paper's Table I
	// (0.01 at batch 4000 → 0.0025 at batch 256): small-batch RMSprop at
	// the paper's raw rate destabilizes the 41-layer networks.
	return Profile{
		Name:       "default",
		Records:    6000,
		EpochsUNSW: 14, EpochsNSL: 10,
		Batch: 256, LR: 0.0025,
		Folds: 1, TestFrac: 0.2,
		Seed:     1,
		GradClip: 5,
	}
}

// SmokeProfile is the miniature profile for tests and benchmarks.
func SmokeProfile() Profile {
	return Profile{
		Name:       "smoke",
		Records:    360,
		EpochsUNSW: 2, EpochsNSL: 2,
		Batch: 64, LR: 0.01,
		Folds: 1, TestFrac: 0.25,
		Seed:     1,
		Tiny:     true,
		GradClip: 5,
	}
}

// ProfileByName resolves "paper", "default" or "smoke".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "paper":
		return PaperProfile(), nil
	case "default", "":
		return DefaultProfile(), nil
	case "smoke":
		return SmokeProfile(), nil
	}
	return Profile{}, fmt.Errorf("experiments: unknown profile %q (want paper, default or smoke)", name)
}

// DatasetID names one of the two evaluated datasets.
type DatasetID string

const (
	// UNSW is the UNSW-NB15-shaped dataset.
	UNSW DatasetID = "unsw-nb15"
	// NSL is the NSL-KDD-shaped dataset.
	NSL DatasetID = "nsl-kdd"
)

// tinyNSLConfig is an NSL-shaped miniature: same generative structure,
// ~26 encoded features, boosted rare-class weights so every class appears
// in small draws.
func tinyNSLConfig() synth.Config {
	cfg := synth.NSLKDDConfig()
	cfg.Name = "nsl-kdd-tiny"
	cfg.NumericName = cfg.NumericName[:10]
	cfg.Cats = []synth.CatSpec{
		{Name: "protocol_type", Card: 3},
		{Name: "service", Card: 8},
		{Name: "flag", Card: 5},
	}
	cfg.Classes = []synth.ClassSpec{
		{Name: "normal", Weight: 0.45},
		{Name: "dos", Weight: 0.30},
		{Name: "probe", Weight: 0.12},
		{Name: "r2l", Weight: 0.08},
		{Name: "u2r", Weight: 0.05},
	}
	cfg.LatentDim = 8
	cfg.QuadTerms = 6
	return cfg
}

// tinyUNSWConfig is a UNSW-shaped miniature (~31 encoded features).
func tinyUNSWConfig() synth.Config {
	cfg := synth.UNSWNB15Config()
	cfg.Name = "unsw-nb15-tiny"
	cfg.NumericName = cfg.NumericName[:12]
	cfg.Cats = []synth.CatSpec{
		{Name: "proto", Card: 10},
		{Name: "service", Card: 5},
		{Name: "state", Card: 4},
	}
	cfg.Classes = []synth.ClassSpec{
		{Name: "normal", Weight: 0.40},
		{Name: "generic", Weight: 0.20},
		{Name: "exploits", Weight: 0.15},
		{Name: "fuzzers", Weight: 0.10},
		{Name: "dos", Weight: 0.08},
		{Name: "reconnaissance", Weight: 0.07},
	}
	cfg.LatentDim = 10
	cfg.QuadTerms = 8
	return cfg
}

// DatasetConfig returns the synth config, record count and epoch budget for
// a dataset under this profile.
func (p Profile) DatasetConfig(id DatasetID) (synth.Config, int, int, error) {
	var cfg synth.Config
	var epochs int
	switch id {
	case UNSW:
		if p.Tiny {
			cfg = tinyUNSWConfig()
		} else {
			cfg = synth.UNSWNB15Config()
		}
		epochs = p.EpochsUNSW
		if epochs == 0 {
			epochs = 100 // Table I
		}
	case NSL:
		if p.Tiny {
			cfg = tinyNSLConfig()
		} else {
			cfg = synth.NSLKDDConfig()
		}
		epochs = p.EpochsNSL
		if epochs == 0 {
			epochs = 50 // Table I
		}
	default:
		return synth.Config{}, 0, 0, fmt.Errorf("experiments: unknown dataset %q", id)
	}
	records := p.Records
	if records == 0 {
		n, err := synth.PaperRecordCount(cfg.Name)
		if err != nil {
			// Tiny configs have no paper count; fall back to a small draw.
			n = 2000
		}
		records = n
	}
	return cfg, records, epochs, nil
}
