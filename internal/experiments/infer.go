package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// InferBenchRow is one engine's measurement in the f64-vs-f32 serving A/B.
type InferBenchRow struct {
	Engine string `json:"engine"`
	// NsPerOp is the time for one batch forward pass.
	NsPerOp float64 `json:"ns_per_op"`
	// RecordsPerSec is the scored-flow throughput at the benchmark batch.
	RecordsPerSec float64 `json:"records_per_sec"`
	// BytesMoved estimates the bytes streamed per pass (weights +
	// activations at the engine's precision) — a lower bound for the f64
	// training graph, exact arena accounting for the compiled plan.
	BytesMoved int64 `json:"bytes_moved_per_pass"`
}

// InferBenchResult is the side-by-side engine comparison pelican-bench
// -exp infer reports (and serializes to BENCH_infer.json with -json).
type InferBenchResult struct {
	Model    string          `json:"model"`
	Features int             `json:"features"`
	Classes  int             `json:"classes"`
	Batch    int             `json:"batch"`
	Rows     []InferBenchRow `json:"rows"`
	// SpeedupF32 is f32 records/s over f64 records/s (0 unless both ran).
	SpeedupF32 float64 `json:"speedup_f32"`
	// MaxScoreDelta is the elementwise max |f64 logit − f32 logit| across
	// every class of every benchmark-batch row (0 unless both ran) — a
	// per-class bound, deliberately stricter than comparing only the two
	// winners, which could understate divergence on an argmax flip.
	MaxScoreDelta float64 `json:"max_score_delta"`
	// PlanSteps/PlanWeightBytes/PlanArenaBytes describe the compiled plan;
	// the arena is the recycled-buffer activation working set at Batch.
	PlanSteps       int   `json:"plan_steps"`
	PlanWeightBytes int64 `json:"plan_weight_bytes"`
	PlanArenaBytes  int64 `json:"plan_arena_bytes"`
}

// inferBenchMinDur is how long each engine is driven; long enough to
// amortize timer noise, short enough for the CI smoke.
const inferBenchMinDur = 300 * time.Millisecond

// RunInferBench measures the float64 training-graph forward pass against
// the compiled float32 inference engine on the serving shape (Residual-41
// at the paper's UNSW width — the BenchmarkPelicanForward workload — at
// batch 64; Tiny profiles shrink the width so smoke runs finish fast).
// engine selects "f64", "f32" or "both".
func RunInferBench(p Profile, engine string, log io.Writer) (*InferBenchResult, error) {
	if engine != "both" && engine != "f32" && engine != "f64" {
		return nil, fmt.Errorf("experiments: unknown engine %q (want f32, f64 or both)", engine)
	}
	features := 196 // the paper's UNSW-NB15 encoded width
	if p.Tiny {
		features = 48
	}
	const classes, batch = 10, 64
	rng := rand.New(rand.NewSource(p.Seed))
	stack := models.BuildPelican(rng, rand.New(rand.NewSource(p.Seed+1)),
		models.PaperBlockConfig(features), classes)
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(p.LR))
	x := tensor.RandNormal(rng, 0, 1, batch, 1, features)
	// A couple of training passes move the BatchNorm running moments off
	// their initialization so the lowered plan folds real statistics.
	stack.Forward(x, true)
	stack.Forward(x, true)

	plan, err := infer.Compile(net)
	if err != nil {
		return nil, err
	}
	res := &InferBenchResult{
		Model: "pelican", Features: features, Classes: classes, Batch: batch,
		PlanSteps: plan.Steps(), PlanWeightBytes: plan.WeightBytes(),
		PlanArenaBytes: plan.ArenaBytes(batch),
	}

	var f64Logits []float64
	var f32Logits []float32
	if engine != "f32" {
		if log != nil {
			fmt.Fprintf(log, "infer-bench: driving f64 engine (%d features, batch %d)\n", features, batch)
		}
		ns, _ := timeLoop(func() { net.Predict(x) })
		f64Logits = append(f64Logits, net.Predict(x).Data()...)
		res.Rows = append(res.Rows, InferBenchRow{
			Engine:        "f64",
			NsPerOp:       ns,
			RecordsPerSec: float64(batch) * float64(time.Second) / ns,
			// Lower bound: every parameter plus the plan's activation
			// traffic, both at 8 bytes/element.
			BytesMoved: 8*int64(nn.ParamCount(net.Params())) + 2*plan.ActivationBytes(batch),
		})
	}
	if engine != "f64" {
		if log != nil {
			fmt.Fprintf(log, "infer-bench: driving f32 engine (%d plan steps)\n", plan.Steps())
		}
		eng := plan.NewEngine()
		in := eng.In(batch)
		for i, v := range x.Data() {
			in[i] = float32(v)
		}
		ns, _ := timeLoop(func() { eng.Run(batch) })
		f32Logits = append(f32Logits, eng.Run(batch)...)
		res.Rows = append(res.Rows, InferBenchRow{
			Engine:        "f32",
			NsPerOp:       ns,
			RecordsPerSec: float64(batch) * float64(time.Second) / ns,
			BytesMoved:    plan.WeightBytes() + plan.ActivationBytes(batch),
		})
	}
	if f64Logits != nil && f32Logits != nil {
		for i := range f64Logits {
			if d := math.Abs(f64Logits[i] - float64(f32Logits[i])); d > res.MaxScoreDelta {
				res.MaxScoreDelta = d
			}
		}
		res.SpeedupF32 = res.Rows[1].RecordsPerSec / res.Rows[0].RecordsPerSec
	}
	return res, nil
}

// timeLoop drives fn for at least inferBenchMinDur after one warm-up call
// and returns (ns per call, calls).
func timeLoop(fn func()) (float64, int) {
	fn() // warm buffers and pools outside the timed window
	start := time.Now()
	ops := 0
	for {
		fn()
		ops++
		if elapsed := time.Since(start); elapsed >= inferBenchMinDur {
			return float64(elapsed.Nanoseconds()) / float64(ops), ops
		}
	}
}

// FormatInferBench renders the A/B table.
func FormatInferBench(r *InferBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INFERENCE ENGINE A/B — %s (%d features, %d classes, batch %d)\n",
		r.Model, r.Features, r.Classes, r.Batch)
	fmt.Fprintf(&b, "%-8s %14s %14s %16s\n", "engine", "ns/op", "records/s", "bytes moved/op")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %14.0f %14.0f %16d\n", row.Engine, row.NsPerOp, row.RecordsPerSec, row.BytesMoved)
	}
	if r.SpeedupF32 > 0 {
		fmt.Fprintf(&b, "f32 speedup: %.2fx records/s; max per-class |logit delta| %.2e\n", r.SpeedupF32, r.MaxScoreDelta)
	}
	fmt.Fprintf(&b, "plan: %d steps, %d weight bytes, %d-byte arena @ batch %d (f64 checkpoint lowered once at load)\n",
		r.PlanSteps, r.PlanWeightBytes, r.PlanArenaBytes, r.Batch)
	return b.String()
}
