package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestWorkspaceRoundTrip(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(3, 5)
	if a.Dim(0) != 3 || a.Dim(1) != 5 {
		t.Fatalf("Get shape = %v, want [3 5]", a.Shape())
	}
	a.Fill(7)
	ws.Put(a)
	// The recycled buffer serves a smaller request of the same class.
	b := ws.Get(14)
	if b.Len() != 14 {
		t.Fatalf("recycled Get length = %d, want 14", b.Len())
	}
	ws.Put(b)
}

func TestWorkspaceGetZeroed(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 4)
	a.Fill(3)
	ws.Put(a)
	z := ws.GetZeroed(4, 4)
	for i, v := range z.Data() {
		if v != 0 {
			t.Fatalf("GetZeroed element %d = %v, want 0", i, v)
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(100)
	pa := &a.Data()[0]
	ws.Put(a)
	b := ws.Get(64, 2) // 128 elements: same power-of-two class as 100
	if &b.Data()[0] != pa {
		t.Fatal("Get after Put did not reuse the pooled backing array")
	}
}

func TestWorkspaceZeroSize(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(0, 5)
	if a.Len() != 0 {
		t.Fatalf("zero-size Get has %d elements", a.Len())
	}
	ws.Put(a) // no-op, must not panic
}

func TestWorkspacePutForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a non-pooled tensor did not panic")
		}
	}()
	NewWorkspace().Put(New(3)) // capacity 3 is not a power of two
}

// TestWorkspaceConcurrent checks the pool under concurrent checkout/release
// (meaningful under -race).
func TestWorkspaceConcurrent(t *testing.T) {
	ws := NewWorkspace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(300)
				tt := ws.Get(n)
				tt.Fill(float64(n))
				for _, v := range tt.Data() {
					if v != float64(n) {
						t.Errorf("workspace tensor corrupted: got %v want %v", v, n)
						return
					}
				}
				ws.Put(tt)
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestResize(t *testing.T) {
	a := New(4, 8)
	base := &a.Data()[0]
	a.Resize(2, 3)
	if a.Dim(0) != 2 || a.Dim(1) != 3 || a.Len() != 6 {
		t.Fatalf("Resize shape = %v", a.Shape())
	}
	if &a.Data()[0] != base {
		t.Fatal("shrinking Resize reallocated")
	}
	a.Resize(5, 100)
	if a.Len() != 500 {
		t.Fatalf("growing Resize length = %d", a.Len())
	}
}

func TestViewRowsSharesStorage(t *testing.T) {
	a := New(4, 3)
	for i := 0; i < a.Len(); i++ {
		a.Data()[i] = float64(i)
	}
	v := a.ViewRows(1, 3)
	if v.Dim(0) != 2 || v.Dim(1) != 3 {
		t.Fatalf("ViewRows shape = %v, want [2 3]", v.Shape())
	}
	if v.At(0, 0) != 3 || v.At(1, 2) != 8 {
		t.Fatalf("ViewRows values wrong: %v", v.Data())
	}
	v.Set(-1, 0, 0)
	if a.At(1, 0) != -1 {
		t.Fatal("ViewRows does not share storage with its parent")
	}
}

func TestViewRowsRank3(t *testing.T) {
	a := New(3, 2, 2)
	for i := 0; i < a.Len(); i++ {
		a.Data()[i] = float64(i)
	}
	v := a.ViewRows(2, 3)
	if v.Rank() != 3 || v.Dim(0) != 1 || v.Dim(1) != 2 || v.Dim(2) != 2 {
		t.Fatalf("rank-3 ViewRows shape = %v", v.Shape())
	}
	if v.At(0, 0, 0) != 8 {
		t.Fatalf("rank-3 ViewRows first element = %v, want 8", v.At(0, 0, 0))
	}
}

func TestGatherRowsInto(t *testing.T) {
	src := New(5, 2)
	for i := 0; i < src.Len(); i++ {
		src.Data()[i] = float64(i)
	}
	dst := New(3, 2)
	GatherRowsInto(dst, src, []int{4, 0, 2})
	want := []float64{8, 9, 0, 1, 4, 5}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("GatherRowsInto = %v, want %v", dst.Data(), want)
		}
	}
}
