package tensor

import (
	"fmt"
	"math"
)

// binaryCheck panics unless a, b and dst all have the same element count.
func binaryCheck(op string, dst, a, b *Tensor) {
	if len(a.data) != len(b.data) || len(dst.data) != len(a.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch dst=%v a=%v b=%v", op, dst.shape, a.shape, b.shape))
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	binaryCheck("AddInto", dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av + b.data[i]
	}
}

// Add returns a + b elementwise as a new tensor shaped like a.
func Add(a, b *Tensor) *Tensor {
	dst := New(a.shape...)
	AddInto(dst, a, b)
	return dst
}

// SubInto computes dst = a - b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Tensor) {
	binaryCheck("SubInto", dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av - b.data[i]
	}
}

// Sub returns a - b elementwise as a new tensor shaped like a.
func Sub(a, b *Tensor) *Tensor {
	dst := New(a.shape...)
	SubInto(dst, a, b)
	return dst
}

// MulInto computes dst = a * b elementwise (Hadamard). dst may alias a or b.
func MulInto(dst, a, b *Tensor) {
	binaryCheck("MulInto", dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av * b.data[i]
	}
}

// Mul returns the elementwise product of a and b as a new tensor.
func Mul(a, b *Tensor) *Tensor {
	dst := New(a.shape...)
	MulInto(dst, a, b)
	return dst
}

// DivInto computes dst = a / b elementwise. dst may alias a or b.
func DivInto(dst, a, b *Tensor) {
	binaryCheck("DivInto", dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av / b.data[i]
	}
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar adds s to every element of t in place.
func (t *Tensor) AddScalar(s float64) {
	for i := range t.data {
		t.data[i] += s
	}
}

// Axpy computes t += alpha*x in place (same element counts required).
func (t *Tensor) Axpy(alpha float64, x *Tensor) {
	if len(t.data) != len(x.data) {
		panic(fmt.Sprintf("tensor: Axpy size mismatch %v vs %v", t.shape, x.shape))
	}
	for i, xv := range x.data {
		t.data[i] += alpha * xv
	}
}

// Apply replaces every element v of t with f(v), in place, and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty tensor).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", t.shape, o.shape))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgmaxRow returns, for each row of a rank-2 tensor, the column index of
// its maximum element.
func (t *Tensor) ArgmaxRow() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRow on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best, bestIdx := math.Inf(-1), 0
		for c, v := range row {
			if v > best {
				best, bestIdx = v, c
			}
		}
		out[r] = bestIdx
	}
	return out
}

// SumRowsInto accumulates the column sums of a rank-2 tensor into dst,
// which must be a vector of length cols. dst is overwritten.
func SumRowsInto(dst *Tensor, a *Tensor) {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRowsInto on rank-%d tensor", len(a.shape)))
	}
	rows, cols := a.shape[0], a.shape[1]
	if len(dst.data) != cols {
		panic(fmt.Sprintf("tensor: SumRowsInto dst length %d != cols %d", len(dst.data), cols))
	}
	dst.Zero()
	for r := 0; r < rows; r++ {
		row := a.data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst.data[c] += v
		}
	}
}

// AddRowVec adds vector v (length cols) to every row of a rank-2 tensor
// in place.
func (t *Tensor) AddRowVec(v *Tensor) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowVec on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	if len(v.data) != cols {
		panic(fmt.Sprintf("tensor: AddRowVec vector length %d != cols %d", len(v.data), cols))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v.data[c]
		}
	}
}

// MulRowVec multiplies every row of a rank-2 tensor elementwise by vector v
// (length cols) in place.
func (t *Tensor) MulRowVec(v *Tensor) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: MulRowVec on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	if len(v.data) != cols {
		panic(fmt.Sprintf("tensor: MulRowVec vector length %d != cols %d", len(v.data), cols))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] *= v.data[c]
		}
	}
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = t.data[r*cols+c]
		}
	}
	return out
}

// Clip clamps every element of t into [lo, hi] in place.
func (t *Tensor) Clip(lo, hi float64) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// ApproxEqual reports whether t and o are elementwise equal within tol.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if len(a.data) != len(b.data) {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
