package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// wsClasses is the number of power-of-two size classes a Workspace keeps.
// Class c holds tensors whose backing array has capacity exactly 1<<c, so
// the largest pooled tensor is 1<<(wsClasses-1) elements (≈ 2G floats) —
// far beyond anything the training loops allocate.
const wsClasses = 32

// Workspace is a goroutine-safe, size-bucketed pool of scratch tensors.
//
// Hot paths check tensors out with Get/GetZeroed and return them with Put
// once the values are dead, so steady-state training and inference reuse a
// fixed set of backing arrays instead of allocating fresh ones every call.
// Tensors are bucketed by power-of-two capacity; a Get for n elements is
// served by any pooled tensor of the matching class, reshaped in place.
//
// Ownership rules (see PERF.md for the full contract):
//
//   - The caller of Get owns the tensor until it calls Put.
//   - Only tensors obtained from Get may be Put, and at most once per Get;
//     views created with Reshape/ViewRows share storage and must never be
//     Put themselves.
//   - A tensor whose lifetime is "until my next call" (layer outputs, BPTT
//     step caches) is reclaimed by its owner at the start of that next call,
//     not by the consumer.
//
// Dropping a checked-out tensor without Put is safe — it is simply garbage
// collected — so error paths need no cleanup.
type Workspace struct {
	mu      sync.Mutex
	buckets [wsClasses][]*Tensor
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Scratch is the package-default workspace shared by the nn hot paths.
// It is goroutine-safe; independent networks running concurrently simply
// share one pool of buffers.
var Scratch = NewWorkspace()

// sizeClass returns the class whose capacity 1<<c is the smallest power of
// two ≥ n (n ≥ 1).
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Get checks out a tensor of the given shape. Its contents are unspecified
// garbage; use GetZeroed when the caller does not overwrite every element.
func (w *Workspace) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	if n == 0 {
		return New(shape...)
	}
	c := sizeClass(n)
	w.mu.Lock()
	bucket := w.buckets[c]
	if len(bucket) > 0 {
		t := bucket[len(bucket)-1]
		w.buckets[c] = bucket[:len(bucket)-1]
		w.mu.Unlock()
		return t.Resize(shape...)
	}
	w.mu.Unlock()
	// Allocate the full class capacity so the invariant "class c holds
	// capacity 1<<c" survives round trips through Put.
	data := make([]float64, 1<<c)
	t := &Tensor{shape: cloneInts(shape), data: data[:n]}
	return t
}

// GetZeroed checks out a zero-filled tensor of the given shape.
func (w *Workspace) GetZeroed(shape ...int) *Tensor {
	t := w.Get(shape...)
	t.Zero()
	return t
}

// Put returns a tensor previously obtained from Get to the pool. Putting
// nil or an empty tensor is a no-op. The caller must not use t (or any view
// of it) afterwards.
func (w *Workspace) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	c := sizeClass(cap(t.data))
	if 1<<c != cap(t.data) {
		// Not allocated by Get (foreign capacity): refuse rather than
		// corrupt the class invariant.
		panic(fmt.Sprintf("tensor: Workspace.Put of tensor with non-pooled capacity %d", cap(t.data)))
	}
	w.mu.Lock()
	w.buckets[c] = append(w.buckets[c], t)
	w.mu.Unlock()
}
