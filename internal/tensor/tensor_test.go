package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Len(); got != 24 {
		t.Fatalf("Len() = %d, want 24", got)
	}
	if got := tt.Rank(); got != 3 {
		t.Fatalf("Rank() = %d, want 3", got)
	}
	sh := tt.Shape()
	if sh[0] != 2 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("Shape() = %v, want [2 3 4]", sh)
	}
	// Shape() must return a copy, not an alias.
	sh[0] = 99
	if tt.Dim(0) != 2 {
		t.Fatal("Shape() returned an aliased slice")
	}
}

func TestNewZeroSized(t *testing.T) {
	tt := New(0, 5)
	if tt.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tt.Len())
	}
	if got := tt.Sum(); got != 0 {
		t.Fatalf("Sum() = %v, want 0", got)
	}
	if got := tt.Mean(); got != 0 {
		t.Fatalf("Mean() of empty = %v, want 0", got)
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 3)
}

func TestFromSlice(t *testing.T) {
	tt := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := tt.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if got := tt.At(0, 0); got != 1 {
		t.Fatalf("At(0,0) = %v, want 1", got)
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Fatalf("At after Set = %v, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	tt := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := tt.Reshape(3, 2)
	r.Set(99, 0, 1)
	if got := tt.At(0, 1); got != 99 {
		t.Fatalf("reshape did not share data: At(0,1) = %v, want 99", got)
	}
}

func TestReshapeInfer(t *testing.T) {
	tt := New(4, 6)
	r := tt.Reshape(2, -1)
	if r.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", r.Dim(1))
	}
	r2 := tt.Reshape(-1)
	if r2.Rank() != 1 || r2.Dim(0) != 24 {
		t.Fatalf("flatten got shape %v, want [24]", r2.Shape())
	}
}

func TestReshapePanicsOnBadCount(t *testing.T) {
	tt := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	tt.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestRowIsView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatal("Row should be a view, not a copy")
	}
}

func TestSliceRowsIsCopy(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s := a.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("SliceRows content wrong: %v", s)
	}
	s.Set(99, 0, 0)
	if a.At(1, 0) != 3 {
		t.Fatal("SliceRows must copy, not alias")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul wrong: %v", got)
	}
	d := New(2, 2)
	DivInto(d, b, a)
	if d.Data()[3] != 10 {
		t.Fatalf("DivInto wrong: %v", d.Data())
	}
}

func TestAddIntoAliasSafe(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	AddInto(a, a, b) // dst aliases a
	want := []float64{5, 7, 9}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("aliased AddInto = %v, want %v", a.Data(), want)
		}
	}
}

func TestScaleAxpyApply(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	a.Scale(2)
	if a.At(2) != 6 {
		t.Fatalf("Scale wrong: %v", a)
	}
	x := FromSlice([]float64{1, 1, 1}, 3)
	a.Axpy(0.5, x)
	if a.At(0) != 2.5 {
		t.Fatalf("Axpy wrong: %v", a)
	}
	a.Apply(func(v float64) float64 { return -v })
	if a.At(0) != -2.5 {
		t.Fatalf("Apply wrong: %v", a)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, -4}, 4)
	if got := a.Sum(); got != -2 {
		t.Fatalf("Sum = %v, want -2", got)
	}
	if got := a.Mean(); got != -0.5 {
		t.Fatalf("Mean = %v, want -0.5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v, want sqrt(30)", got)
	}
}

func TestArgmaxRow(t *testing.T) {
	a := FromSlice([]float64{0.1, 0.7, 0.2, 0.9, 0.05, 0.05}, 2, 3)
	got := a.ArgmaxRow()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRow = %v, want [1 0]", got)
	}
}

func TestSumRowsInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	dst := New(3)
	SumRowsInto(dst, a)
	want := []float64{5, 7, 9}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("SumRowsInto = %v, want %v", dst.Data(), want)
		}
	}
}

func TestAddRowVecMulRowVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 100}, 2)
	a.AddRowVec(v)
	if a.At(0, 0) != 11 || a.At(1, 1) != 104 {
		t.Fatalf("AddRowVec wrong: %v", a)
	}
	a.MulRowVec(v)
	if a.At(0, 0) != 110 || a.At(1, 1) != 10400 {
		t.Fatalf("MulRowVec wrong: %v", a)
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose2D()
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v, want [3 2]", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at)
	}
}

func TestClip(t *testing.T) {
	a := FromSlice([]float64{-5, 0, 5}, 3)
	a.Clip(-1, 1)
	if a.At(0) != -1 || a.At(1) != 0 || a.At(2) != 1 {
		t.Fatalf("Clip wrong: %v", a)
	}
}

func TestAllFinite(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	if !a.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	a.Set(math.NaN(), 0)
	if a.AllFinite() {
		t.Fatal("NaN tensor reported finite")
	}
	a.Set(math.Inf(1), 0)
	if a.AllFinite() {
		t.Fatal("Inf tensor reported finite")
	}
}

func TestStringAbbreviates(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String()")
	}
	big := New(100)
	s := big.String()
	if len(s) > 400 {
		t.Fatalf("String() of large tensor too long: %d chars", len(s))
	}
}

// --- property-based tests -------------------------------------------------

// TestPropAddCommutative: a+b == b+a elementwise.
func TestPropAddCommutative(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		b := a.Map(func(v float64) float64 { return v/2 + 1 })
		return ApproxEqual(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropSubAddInverse: (a+b)-b == a (up to float rounding).
func TestPropSubAddInverse(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		a := FromSlice(clean, len(clean))
		b := a.Map(func(v float64) float64 { return v * 0.3 })
		return ApproxEqual(Sub(Add(a, b), b), a, 1e-6*math.Max(1, a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropReshapePreservesSum: reshaping never changes contents.
func TestPropReshapePreservesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(rng, 0, 1, rows, cols)
		return math.Abs(a.Sum()-a.Reshape(-1).Sum()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropTransposeInvolution: (Aᵀ)ᵀ == A.
func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		a := RandNormal(r, 0, 3, rows, cols)
		return ApproxEqual(a.Transpose2D().Transpose2D(), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropDotCauchySchwarz: |<a,b>| <= ||a||·||b||.
func TestPropDotCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a := RandNormal(r, 0, 2, n)
		b := RandNormal(r, 0, 2, n)
		return math.Abs(a.Dot(b)) <= a.Norm2()*b.Norm2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
