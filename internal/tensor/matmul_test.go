package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation used to validate the
// optimized/parallel kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 5, 5)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
	}
	if !ApproxEqual(MatMul(a, eye), a, 1e-12) {
		t.Fatal("A @ I != A")
	}
	if !ApproxEqual(MatMul(eye, a), a, 1e-12) {
		t.Fatal("I @ A != A")
	}
}

func TestMatMulMatchesNaiveAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sizes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 17, 29}, {64, 128, 32}}
	for _, sz := range sizes {
		m, k, n := sz[0], sz[1], sz[2]
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !ApproxEqual(got, want, 1e-9) {
			t.Fatalf("MatMul mismatch at size %v", sz)
		}
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	// Big enough to exceed parallelThreshold and exercise the banded path.
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 0, 1, 150, 80)
	b := RandNormal(rng, 0, 1, 80, 90)
	if !ApproxEqual(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul mismatch vs naive")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 0, 1, 6, 4) // k×m layout: aᵀ is 4×6
	b := RandNormal(rng, 0, 1, 6, 5)
	dst := New(4, 5)
	MatMulTransAInto(dst, a, b)
	want := naiveMatMul(a.Transpose2D(), b)
	if !ApproxEqual(dst, want, 1e-9) {
		t.Fatal("MatMulTransAInto mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandNormal(rng, 0, 1, 6, 4)
	b := RandNormal(rng, 0, 1, 5, 4) // n×k layout: bᵀ is 4×5
	dst := New(6, 5)
	MatMulTransBInto(dst, a, b)
	want := naiveMatMul(a, b.Transpose2D())
	if !ApproxEqual(dst, want, 1e-9) {
		t.Fatal("MatMulTransBInto mismatch")
	}
}

// oddDims are deliberately awkward sizes that exercise every remainder path
// of the 4×4/2×4 register tiles (single rows, tails mod 4, tile-aligned).
var oddDims = []int{1, 3, 17, 64, 127}

// TestTiledKernelsMatchNaiveOddShapes cross-checks all three tiled kernels
// against the naive reference over every (m, k, n) combination of oddDims.
func TestTiledKernelsMatchNaiveOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range oddDims {
		for _, k := range oddDims {
			for _, n := range oddDims {
				a := RandNormal(rng, 0, 1, m, k)
				b := RandNormal(rng, 0, 1, k, n)
				want := naiveMatMul(a, b)

				got := New(m, n)
				MatMulInto(got, a, b)
				if !ApproxEqual(got, want, 1e-9) {
					t.Fatalf("MatMulInto mismatch at m=%d k=%d n=%d", m, k, n)
				}

				MatMulTransAInto(got, a.Transpose2D(), b)
				if !ApproxEqual(got, want, 1e-9) {
					t.Fatalf("MatMulTransAInto mismatch at m=%d k=%d n=%d", m, k, n)
				}

				MatMulTransBInto(got, a, b.Transpose2D())
				if !ApproxEqual(got, want, 1e-9) {
					t.Fatalf("MatMulTransBInto mismatch at m=%d k=%d n=%d", m, k, n)
				}
			}
		}
	}
}

// TestTiledKernelsZeroBlocks checks the all-zero block shortcut: sparse
// operands (zero rows/blocks interleaved) must still produce exact results.
func TestTiledKernelsZeroBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := RandNormal(rng, 0, 1, 13, 9)
	b := RandNormal(rng, 0, 1, 9, 11)
	ad := a.Data()
	for i := 0; i < a.Len(); i++ {
		if i%3 != 0 {
			ad[i] = 0
		}
	}
	for r := 4; r < 8; r++ { // a full zero row band
		for c := 0; c < 9; c++ {
			a.Set(0, r, c)
		}
	}
	want := naiveMatMul(a, b)

	got := New(13, 11)
	MatMulInto(got, a, b)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatal("sparse MatMulInto mismatch vs naive")
	}
	MatMulTransAInto(got, a.Transpose2D(), b)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatal("sparse MatMulTransAInto mismatch vs naive")
	}
	MatMulTransBInto(got, a, b.Transpose2D())
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatal("sparse MatMulTransBInto mismatch vs naive")
	}
}

// TestMatMulConcurrent hammers the shared worker pool from many goroutines
// with distinct destinations; run under -race it proves MatMulInto is safe
// for concurrent use.
func TestMatMulConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Big enough that m*k*n exceeds parallelThreshold, forcing pool use
	// whenever GOMAXPROCS > 1.
	a := RandNormal(rng, 0, 1, 96, 64)
	b := RandNormal(rng, 0, 1, 64, 48)
	want := naiveMatMul(a, b)

	const goroutines = 8
	const iters = 20
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			dst := New(96, 48)
			for it := 0; it < iters; it++ {
				MatMulInto(dst, a, b)
				if !ApproxEqual(dst, want, 1e-9) {
					errs <- fmt.Errorf("concurrent MatMulInto diverged")
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVecInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	dst := New(2)
	MatVecInto(dst, a, x)
	if dst.At(0) != -2 || dst.At(1) != -2 {
		t.Fatalf("MatVecInto = %v, want [-2 -2]", dst.Data())
	}
}

func TestOuterAccumulates(t *testing.T) {
	dst := Ones(2, 3)
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{3, 4, 5}, 3)
	Outer(dst, 2, x, y)
	// dst[i][j] = 1 + 2*x[i]*y[j]
	if dst.At(0, 0) != 7 || dst.At(1, 2) != 21 {
		t.Fatalf("Outer wrong: %v", dst)
	}
}

// TestPropMatMulDistributive: A(B+C) == AB + AC.
func TestPropMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		c := RandNormal(r, 0, 1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return ApproxEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropMatMulAssociative: (AB)C == A(BC).
func TestPropMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		c := RandNormal(r, 0, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return ApproxEqual(left, right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropTransposeProduct: (AB)ᵀ == BᵀAᵀ.
func TestPropTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		left := MatMul(a, b).Transpose2D()
		right := MatMul(b.Transpose2D(), a.Transpose2D())
		return ApproxEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := GlorotUniform(rng, 100, 100, 50, 50)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Glorot sample %v outside ±%v", v, limit)
		}
	}
}

func TestHeNormalStd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := HeNormal(rng, 50, 200, 200)
	var sum, sq float64
	for _, v := range w.Data() {
		sum += v
		sq += v * v
	}
	n := float64(w.Len())
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want)/want > 0.05 {
		t.Fatalf("He std = %v, want ≈ %v", std, want)
	}
}

func TestShuffleKeepsRowsAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := 64
	x := New(rows, 2)
	labels := make([]int, rows)
	for i := 0; i < rows; i++ {
		x.Set(float64(i), i, 0)
		x.Set(float64(i)*10, i, 1)
		labels[i] = i
	}
	Shuffle(rng, x, labels)
	perm := make([]bool, rows)
	for i := 0; i < rows; i++ {
		l := labels[i]
		if x.At(i, 0) != float64(l) || x.At(i, 1) != float64(l)*10 {
			t.Fatalf("row %d no longer aligned with its label %d", i, l)
		}
		if perm[l] {
			t.Fatalf("label %d appears twice after shuffle", l)
		}
		perm[l] = true
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 0, 1, 128, 128)
	y := RandNormal(rng, 0, 1, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 0, 1, 512, 512)
	y := RandNormal(rng, 0, 1, 512, 512)
	dst := New(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}
