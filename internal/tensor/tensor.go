// Package tensor provides dense float64 tensors and the numeric kernels
// (elementwise ops, reductions, parallel GEMM) that the nn package is built
// on. Tensors are row-major and contiguous; Reshape shares underlying data
// while Clone copies it.
//
// The package is deliberately small and allocation-conscious: all hot-path
// operations have *Into variants that write into a caller-supplied
// destination so training loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tensor is a dense, row-major, contiguous float64 tensor.
//
// The zero value is an empty tensor with no shape. Use New, Zeros, or
// FromSlice to construct one.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a tensor with zero total elements is valid.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float64, n)}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The tensor takes
// ownership of the slice (no copy). It panics if len(data) does not match
// the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), cloneInts(shape), n))
	}
	return &Tensor{shape: cloneInts(shape), data: data}
}

// checkShape validates a shape and returns its element count. The panic
// path formats a clone so the shape argument itself provably does not
// escape — this keeps variadic shape slices on callers' stacks across the
// whole hot path.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", cloneInts(shape)))
		}
		n *= d
	}
	return n
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
// The hot paths in nn use this to avoid per-element bounds checking through
// method calls; external callers should prefer At/Set.
func (t *Tensor) Data() []float64 { return t.data }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view with the given shape sharing t's data. One
// dimension may be -1, in which case it is inferred. It panics if the
// element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = cloneInts(shape)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in Reshape", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, known))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Resize reshapes t in place to the given shape, reusing the backing array
// when its capacity suffices and reallocating otherwise. The contents after
// a Resize are unspecified — callers treat the result as uninitialized
// scratch and overwrite (or Zero) it.
//
// Resize must only be used on tensors the caller exclusively owns (layer
// scratch buffers, workspace checkouts) — resizing a tensor that shares
// storage with a view corrupts the view's bounds. It returns t.
func (t *Tensor) Resize(shape ...int) *Tensor {
	n := checkShape(shape)
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = cloneInts(shape)
	}
	if n <= cap(t.data) {
		t.data = t.data[:n]
	} else {
		t.data = make([]float64, n)
	}
	return t
}

// ResizeLike is Resize to o's shape without allocating a shape slice when
// the ranks already match.
func (t *Tensor) ResizeLike(o *Tensor) *Tensor {
	if cap(t.shape) >= len(o.shape) {
		t.shape = t.shape[:len(o.shape)]
		copy(t.shape, o.shape)
	} else {
		t.shape = cloneInts(o.shape)
	}
	n := len(o.data)
	if n <= cap(t.data) {
		t.data = t.data[:n]
	} else {
		t.data = make([]float64, n)
	}
	return t
}

// ViewRows returns a view of rows [from, to) along the leading axis,
// sharing t's storage (no copy). It works for any rank ≥ 1: the result has
// shape [to-from, t.shape[1:]...]. Mutating the view mutates t.
func (t *Tensor) ViewRows(from, to int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: ViewRows on rank-0 tensor")
	}
	if from < 0 || to > t.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: ViewRows[%d:%d] out of range for %v", from, to, t.shape))
	}
	rowSize := 1
	for _, d := range t.shape[1:] {
		rowSize *= d
	}
	shape := cloneInts(t.shape)
	shape[0] = to - from
	return &Tensor{shape: shape, data: t.data[from*rowSize : to*rowSize : to*rowSize]}
}

// GatherRowsInto copies the rows of src selected by idx into consecutive
// rows of dst. Both tensors must be rank-2 with equal column counts, and
// dst must have len(idx) rows. Used by minibatch gathers so training loops
// can reuse one destination buffer across batches.
func GatherRowsInto(dst, src *Tensor, idx []int) {
	if len(dst.shape) != 2 || len(src.shape) != 2 {
		panic(fmt.Sprintf("tensor: GatherRowsInto requires rank-2 tensors, got dst=%v src=%v", dst.shape, src.shape))
	}
	cols := src.shape[1]
	if dst.shape[1] != cols || dst.shape[0] != len(idx) {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst shape %v, want [%d %d]", dst.shape, len(idx), cols))
	}
	for i, r := range idx {
		if r < 0 || r >= src.shape[0] {
			panic(fmt.Sprintf("tensor: GatherRowsInto row index %d out of range for %v", r, src.shape))
		}
		copy(dst.data[i*cols:(i+1)*cols], src.data[r*cols:(r+1)*cols])
	}
}

// BindView rebinds view (allocating a header when view is nil) to data
// with the given shape, without copying — the reusable-header alternative
// to FromSlice for hot paths that view the same storage every call.
func BindView(view *Tensor, data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: BindView data length %d does not match shape %v (%d elements)", len(data), cloneInts(shape), n))
	}
	if view == nil {
		return &Tensor{shape: cloneInts(shape), data: data}
	}
	if cap(view.shape) >= len(shape) {
		view.shape = view.shape[:len(shape)]
		copy(view.shape, shape)
	} else {
		view.shape = cloneInts(shape)
	}
	view.data = data
	return view
}

// ReshapeInto is Reshape writing into a caller-owned view header instead
// of allocating one: view is rebound to t's storage with the given shape
// (one dimension may be -1) and returned. Hot paths keep one header per
// call site so repeated reshapes allocate nothing. Passing view == nil
// falls back to Reshape.
func (t *Tensor) ReshapeInto(view *Tensor, shape ...int) *Tensor {
	if view == nil {
		return t.Reshape(shape...)
	}
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: ReshapeInto with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in ReshapeInto", d))
		default:
			known *= d
		}
	}
	if cap(view.shape) >= len(shape) {
		view.shape = view.shape[:len(shape)]
		copy(view.shape, shape)
	} else {
		view.shape = cloneInts(shape)
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, cloneInts(shape)))
		}
		view.shape[infer] = len(t.data) / known
		known *= view.shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), cloneInts(shape), known))
	}
	view.data = t.data
	return view
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	data := make([]float64, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: cloneInts(t.shape), data: data}
}

// CopyFrom copies o's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// offset computes the flat index for the given multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Row returns a view of row i of a rank-2 tensor as a slice (no copy).
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// SliceRows returns a new tensor that is a copy of rows [from, to) of a
// rank-2 tensor.
func (t *Tensor) SliceRows(from, to int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SliceRows on rank-%d tensor", len(t.shape)))
	}
	if from < 0 || to > t.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %v", from, to, t.shape))
	}
	c := t.shape[1]
	out := New(to-from, c)
	copy(out.data, t.data[from*c:to*c])
	return out
}

// String renders small tensors fully and large ones abbreviated.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(fmt.Sprintf("%v", t.shape))
	b.WriteByte('[')
	limit := len(t.data)
	const maxShown = 16
	if limit > maxShown {
		limit = maxShown
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(t.data[i], 'g', 5, 64))
	}
	if len(t.data) > maxShown {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}

// AllFinite reports whether every element is finite (no NaN / ±Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns the maximum absolute value of any element (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
