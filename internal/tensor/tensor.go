// Package tensor provides dense float64 tensors and the numeric kernels
// (elementwise ops, reductions, parallel GEMM) that the nn package is built
// on. Tensors are row-major and contiguous; Reshape shares underlying data
// while Clone copies it.
//
// The package is deliberately small and allocation-conscious: all hot-path
// operations have *Into variants that write into a caller-supplied
// destination so training loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tensor is a dense, row-major, contiguous float64 tensor.
//
// The zero value is an empty tensor with no shape. Use New, Zeros, or
// FromSlice to construct one.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a tensor with zero total elements is valid.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float64, n)}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The tensor takes
// ownership of the slice (no copy). It panics if len(data) does not match
// the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: cloneInts(shape), data: data}
}

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
// The hot paths in nn use this to avoid per-element bounds checking through
// method calls; external callers should prefer At/Set.
func (t *Tensor) Data() []float64 { return t.data }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view with the given shape sharing t's data. One
// dimension may be -1, in which case it is inferred. It panics if the
// element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = cloneInts(shape)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in Reshape", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, known))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	data := make([]float64, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: cloneInts(t.shape), data: data}
}

// CopyFrom copies o's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// offset computes the flat index for the given multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Row returns a view of row i of a rank-2 tensor as a slice (no copy).
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// SliceRows returns a new tensor that is a copy of rows [from, to) of a
// rank-2 tensor.
func (t *Tensor) SliceRows(from, to int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SliceRows on rank-%d tensor", len(t.shape)))
	}
	if from < 0 || to > t.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %v", from, to, t.shape))
	}
	c := t.shape[1]
	out := New(to-from, c)
	copy(out.data, t.data[from*c:to*c])
	return out
}

// String renders small tensors fully and large ones abbreviated.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(fmt.Sprintf("%v", t.shape))
	b.WriteByte('[')
	limit := len(t.data)
	const maxShown = 16
	if limit > maxShown {
		limit = maxShown
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(t.data[i], 'g', 5, 64))
	}
	if len(t.data) > maxShown {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}

// AllFinite reports whether every element is finite (no NaN / ±Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns the maximum absolute value of any element (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
