package tensor

import (
	"math"
	"math/rand"
)

// RandUniform fills a new tensor of the given shape with samples drawn
// uniformly from [lo, hi) using rng.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float64()
	}
	return t
}

// RandNormal fills a new tensor of the given shape with samples from
// N(mean, std²) using rng.
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// GlorotUniform initializes a new tensor with the Glorot/Xavier uniform
// scheme: U(-l, l) with l = sqrt(6 / (fanIn + fanOut)). This is Keras's
// default Dense/Conv initializer, which the paper's implementation uses.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, shape...)
}

// HeNormal initializes a new tensor with He-normal: N(0, sqrt(2/fanIn)),
// the usual choice before ReLU nonlinearities.
func HeNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	return RandNormal(rng, 0, math.Sqrt(2.0/float64(fanIn)), shape...)
}

// Shuffle permutes the rows of a rank-2 tensor in place using rng
// (Fisher–Yates). labels, if non-nil, is permuted identically so rows and
// labels stay aligned.
func Shuffle(rng *rand.Rand, t *Tensor, labels []int) {
	if len(t.shape) != 2 {
		panic("tensor: Shuffle requires a rank-2 tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if labels != nil && len(labels) != rows {
		panic("tensor: Shuffle labels length must match row count")
	}
	tmp := make([]float64, cols)
	for i := rows - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		ri := t.data[i*cols : (i+1)*cols]
		rj := t.data[j*cols : (j+1)*cols]
		copy(tmp, ri)
		copy(ri, rj)
		copy(rj, tmp)
		if labels != nil {
			labels[i], labels[j] = labels[j], labels[i]
		}
	}
}
