package tensor

// Float32 GEMM for the compiled inference engine (internal/infer).
//
// Unlike the float64 training kernels — which must take weights in their
// natural (k, n) layout — the inference compiler owns the weight layout and
// pre-transposes every matrix to (n, k) at lowering time: one contiguous
// row per *output* column. That turns the product into pure dot products
// over contiguous operand rows, so the kernel can hold a 2×4 register tile
// of accumulators (two input rows against four weight rows) with no
// read-modify-write of dst inside the k loop — the shape the float64
// TransB kernel measured fastest in PERF.md. Bias add and activation run
// in the tile epilogue while the results are still in registers, and rows
// are parallelized in bands over the persistent GEMM worker pool.

// Act selects the activation fused into the GEMM epilogue.
type Act uint8

const (
	// ActNone applies only the (optional) bias.
	ActNone Act = iota
	// ActReLU applies max(0, x) after the bias add.
	ActReLU
)

// GemmBiasActF32 computes dst = act(a @ wᵀ + bias) for row-major float32
// slices a (m×k), w (n×k — one row per output column, the inference
// compiler's pre-transposed packing) and dst (m×n). bias (length n) may be
// nil. dst must not alias a or w.
//
//pelican:noalloc
func GemmBiasActF32(dst, a, w, bias []float32, m, k, n int, act Act) {
	if len(a) < m*k || len(w) < k*n || len(dst) < m*n {
		panic("tensor: GemmBiasActF32 slice shorter than its shape")
	}
	if bias != nil && len(bias) < n {
		panic("tensor: GemmBiasActF32 bias shorter than n")
	}
	if serialRows(m, k*n) {
		gemmBlockF32(dst, a, w, bias, 0, m, k, n, act)
		return
	}
	parallelRows(m, gemmArgs{kind: gemmF32Fused, dst32: dst, a32: a, w32: w, b32: bias, m: m, k: k, n: n, act: act})
}

// gemmBlockF32 computes rows [r0, r1) of dst = act(a @ wᵀ + bias) in 2×4
// register tiles: eight dot accumulators live in registers across the
// whole k loop.
//
//pelican:noalloc
func gemmBlockF32(dst, a, w, bias []float32, r0, r1, k, n int, act Act) {
	i := r0
	for ; i+2 <= r1; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		d0 := dst[(i+0)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			w0 := w[(j+0)*k : (j+1)*k]
			w1 := w[(j+1)*k : (j+2)*k]
			w2 := w[(j+2)*k : (j+3)*k]
			w3 := w[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			for p := 0; p < k; p++ {
				av0, av1 := a0[p], a1[p]
				wv0, wv1, wv2, wv3 := w0[p], w1[p], w2[p], w3[p]
				s00 += av0 * wv0
				s01 += av0 * wv1
				s02 += av0 * wv2
				s03 += av0 * wv3
				s10 += av1 * wv0
				s11 += av1 * wv1
				s12 += av1 * wv2
				s13 += av1 * wv3
			}
			if bias != nil {
				b0, b1, b2, b3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
				s00, s01, s02, s03 = s00+b0, s01+b1, s02+b2, s03+b3
				s10, s11, s12, s13 = s10+b0, s11+b1, s12+b2, s13+b3
			}
			if act == ActReLU {
				s00, s01, s02, s03 = relu32(s00), relu32(s01), relu32(s02), relu32(s03)
				s10, s11, s12, s13 = relu32(s10), relu32(s11), relu32(s12), relu32(s13)
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			wrow := w[j*k : (j+1)*k]
			var s0, s1 float32
			for p, wv := range wrow {
				s0 += a0[p] * wv
				s1 += a1[p] * wv
			}
			if bias != nil {
				s0 += bias[j]
				s1 += bias[j]
			}
			if act == ActReLU {
				s0, s1 = relu32(s0), relu32(s1)
			}
			d0[j], d1[j] = s0, s1
		}
	}
	// Remainder row: 1×4 tiles.
	for ; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			w0 := w[(j+0)*k : (j+1)*k]
			w1 := w[(j+1)*k : (j+2)*k]
			w2 := w[(j+2)*k : (j+3)*k]
			w3 := w[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * w0[p]
				s1 += av * w1[p]
				s2 += av * w2[p]
				s3 += av * w3[p]
			}
			if bias != nil {
				s0, s1, s2, s3 = s0+bias[j], s1+bias[j+1], s2+bias[j+2], s3+bias[j+3]
			}
			if act == ActReLU {
				s0, s1, s2, s3 = relu32(s0), relu32(s1), relu32(s2), relu32(s3)
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			wrow := w[j*k : (j+1)*k]
			var s float32
			for p, wv := range wrow {
				s += arow[p] * wv
			}
			if bias != nil {
				s += bias[j]
			}
			if act == ActReLU {
				s = relu32(s)
			}
			drow[j] = s
		}
	}
}

//pelican:noalloc
func relu32(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}
