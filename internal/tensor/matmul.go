package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the approximate number of multiply-adds below which
// GEMM runs single-threaded; spawning goroutines for tiny products costs
// more than it saves.
const parallelThreshold = 1 << 16

// MatMulInto computes dst = a @ b for rank-2 tensors a (m×k) and b (k×n),
// writing into dst (m×n). dst must not alias a or b. Large products are
// split across a goroutine per row-band.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulInto", dst, a, b, false, false)
	mulKernel(dst.data, a.data, b.data, m, k, n)
}

// MatMul returns a @ b as a new m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v @ %v", a.shape, b.shape))
	}
	dst := New(a.shape[0], b.shape[1])
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransAInto computes dst = aᵀ @ b where a is k×m and b is k×n,
// producing m×n. Used by backward passes (weight gradients).
func MatMulTransAInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulTransAInto", dst, a, b, true, false)
	mulKernelTransA(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransBInto computes dst = a @ bᵀ where a is m×k and b is n×k,
// producing m×n. Used by backward passes (input gradients).
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulTransBInto", dst, a, b, false, true)
	mulKernelTransB(dst.data, a.data, b.data, m, k, n)
}

// checkMatMul validates shapes and returns (m, k, n).
func checkMatMul(op string, dst, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 tensors, got dst=%v a=%v b=%v", op, dst.shape, a.shape, b.shape))
	}
	if transA {
		k, m = a.shape[0], a.shape[1]
	} else {
		m, k = a.shape[0], a.shape[1]
	}
	var kb int
	if transB {
		n, kb = b.shape[0], b.shape[1]
	} else {
		kb, n = b.shape[0], b.shape[1]
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch a=%v b=%v (transA=%v transB=%v)", op, a.shape, b.shape, transA, transB))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return m, k, n
}

// parallelRows splits the row range [0, m) across workers and runs fn on
// each band concurrently when the total work justifies it.
func parallelRows(m, workPerRow int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*workPerRow < parallelThreshold {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for r0 := 0; r0 < m; r0 += band {
		r1 := r0 + band
		if r1 > m {
			r1 = m
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// mulKernel computes dst = a @ b, a: m×k, b: k×n (row-major flat slices).
// Inner loop is ordered j-last over b's rows for sequential memory access.
func mulKernel(dst, a, b []float64, m, k, n int) {
	parallelRows(m, k*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			arow := a[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// mulKernelTransA computes dst = aᵀ @ b, a: k×m, b: k×n.
func mulKernelTransA(dst, a, b []float64, m, k, n int) {
	// dst[i][j] = sum_p a[p][i] * b[p][j].
	parallelRows(m, k*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// mulKernelTransB computes dst = a @ bᵀ, a: m×k, b: n×k.
func mulKernelTransB(dst, a, b []float64, m, k, n int) {
	// dst[i][j] = dot(a_row_i, b_row_j): both rows are contiguous.
	parallelRows(m, k*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				drow[j] = s
			}
		}
	})
}

// MatVecInto computes dst = a @ x for a rank-2 a (m×k) and vector x (k),
// writing into vector dst (m).
func MatVecInto(dst, a, x *Tensor) {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatVecInto requires rank-2 a, got %v", a.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if len(x.data) != k || len(dst.data) != m {
		panic(fmt.Sprintf("tensor: MatVecInto shape mismatch a=%v x=%v dst=%v", a.shape, x.shape, dst.shape))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for p, av := range row {
			s += av * x.data[p]
		}
		dst.data[i] = s
	}
}

// Outer computes dst += alpha * x ⊗ y where x has length m, y has length n
// and dst is m×n. Used for rank-1 gradient accumulation.
func Outer(dst *Tensor, alpha float64, x, y *Tensor) {
	if len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor: Outer requires rank-2 dst, got %v", dst.shape))
	}
	m, n := dst.shape[0], dst.shape[1]
	if len(x.data) != m || len(y.data) != n {
		panic(fmt.Sprintf("tensor: Outer shape mismatch dst=%v x=%v y=%v", dst.shape, x.shape, y.shape))
	}
	for i := 0; i < m; i++ {
		xv := alpha * x.data[i]
		if xv == 0 {
			continue
		}
		drow := dst.data[i*n : (i+1)*n]
		for j, yv := range y.data {
			drow[j] += xv * yv
		}
	}
}
