package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the approximate number of multiply-adds below which
// GEMM runs single-threaded; handing tiny products to the worker pool costs
// more than it saves.
const parallelThreshold = 1 << 16

// MatMulInto computes dst = a @ b for rank-2 tensors a (m×k) and b (k×n),
// writing into dst (m×n). dst must not alias a or b. Large products are
// split into row bands executed by the persistent GEMM worker pool.
//
//pelican:noalloc
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulInto", dst, a, b, false, false)
	mulKernel(dst.data, a.data, b.data, m, k, n)
}

// MatMul returns a @ b as a new m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v @ %v", a.shape, b.shape))
	}
	dst := New(a.shape[0], b.shape[1])
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransAInto computes dst = aᵀ @ b where a is k×m and b is k×n,
// producing m×n. Used by backward passes (weight gradients).
//
//pelican:noalloc
func MatMulTransAInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulTransAInto", dst, a, b, true, false)
	mulKernelTransA(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransBInto computes dst = a @ bᵀ where a is m×k and b is n×k,
// producing m×n. Used by backward passes (input gradients).
//
//pelican:noalloc
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulTransBInto", dst, a, b, false, true)
	mulKernelTransB(dst.data, a.data, b.data, m, k, n)
}

// checkMatMul validates shapes and returns (m, k, n). The panic paths may
// format freely; the noalloc contract exempts them.
//
//pelican:noalloc
func checkMatMul(op string, dst, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 tensors, got dst=%v a=%v b=%v", op, dst.shape, a.shape, b.shape))
	}
	if transA {
		k, m = a.shape[0], a.shape[1]
	} else {
		m, k = a.shape[0], a.shape[1]
	}
	var kb int
	if transB {
		n, kb = b.shape[0], b.shape[1]
	} else {
		kb, n = b.shape[0], b.shape[1]
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch a=%v b=%v (transA=%v transB=%v)", op, a.shape, b.shape, transA, transB))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return m, k, n
}

// gemmKind selects which block kernel a dispatched band runs.
type gemmKind uint8

const (
	gemmF64 gemmKind = iota
	gemmF64TransA
	gemmF64TransB
	gemmF32Fused
)

// gemmArgs carries one kernel invocation's operands by value. Dispatch
// used to hand the pool a fresh closure per call, which heap-allocated the
// closure and its captured variables on every parallel GEMM; a value
// struct copied into the channel buffer allocates nothing.
type gemmArgs struct {
	kind       gemmKind
	dst, a, b  []float64
	dst32, a32 []float32
	w32, b32   []float32
	m, k, n    int
	act        Act
}

// run executes rows [r0, r1) of the invocation on the calling goroutine.
//
//pelican:noalloc
func (g *gemmArgs) run(r0, r1 int) {
	switch g.kind {
	case gemmF64:
		mulBlock(g.dst, g.a, g.b, r0, r1, g.k, g.n)
	case gemmF64TransA:
		mulBlockTransA(g.dst, g.a, g.b, r0, r1, g.m, g.k, g.n)
	case gemmF64TransB:
		mulBlockTransB(g.dst, g.a, g.b, r0, r1, g.k, g.n)
	case gemmF32Fused:
		gemmBlockF32(g.dst32, g.a32, g.w32, g.b32, r0, r1, g.k, g.n, g.act)
	}
}

// gemmTask is one row band of a kernel invocation, executed by a pool
// worker (or inline by the submitter for the first band).
type gemmTask struct {
	args   gemmArgs
	r0, r1 int
	wg     *sync.WaitGroup
}

var (
	gemmOnce    sync.Once
	gemmQueue   chan gemmTask
	gemmWorkers int
	// gemmWGs recycles the completion WaitGroups so a parallel dispatch
	// never heap-allocates one per call.
	gemmWGs = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startGEMMPool launches the persistent worker goroutines. The pool size is
// fixed at first use from GOMAXPROCS; workers live for the process lifetime
// and cost nothing while idle (blocked on channel receive).
func startGEMMPool() {
	gemmWorkers = runtime.GOMAXPROCS(0)
	gemmQueue = make(chan gemmTask, 4*gemmWorkers)
	for i := 0; i < gemmWorkers; i++ {
		go gemmWorker()
	}
}

// gemmWorker drains the task queue for the process lifetime.
//
//pelican:noalloc
func gemmWorker() {
	for t := range gemmQueue {
		t.args.run(t.r0, t.r1)
		t.wg.Done()
	}
}

// serialRows reports whether an m-row kernel with the given per-row work
// should run on the calling goroutine only. Kept separate from
// parallelRows so the serial fast path never touches the pool.
//
//pelican:noalloc
func serialRows(m, workPerRow int) bool {
	return runtime.GOMAXPROCS(0) <= 1 || m <= 1 || m*workPerRow < parallelThreshold
}

// parallelRows splits the row range [0, m) across the persistent worker
// pool. The calling goroutine executes the first band itself, so small
// splits never pay a full handoff and the pool can never deadlock on its
// own submissions.
//
//pelican:noalloc
func parallelRows(m int, args gemmArgs) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		args.run(0, m)
		return
	}
	gemmOnce.Do(startGEMMPool)
	band := (m + workers - 1) / workers
	wg := gemmWGs.Get().(*sync.WaitGroup)
	for r0 := band; r0 < m; r0 += band {
		r1 := r0 + band
		if r1 > m {
			r1 = m
		}
		wg.Add(1)
		gemmQueue <- gemmTask{args: args, r0: r0, r1: r1, wg: wg}
	}
	args.run(0, band)
	wg.Wait()
	gemmWGs.Put(wg)
}

// The three kernels below are cache-blocked in row panels: each pass
// produces four rows of dst from one sequential stream over b, so every b
// element loaded from cache feeds four multiply-adds instead of one. This
// layout beats dot-product register tiles here because b is walked with
// unit stride (hardware prefetch) rather than column-strided. Panels whose
// four a-values are all zero are skipped, which keeps the old kernels'
// shortcut for zero initial recurrent states and post-ReLU sparsity.

// mulKernel computes dst = a @ b, a: m×k, b: k×n (row-major flat slices).
//
//pelican:noalloc
func mulKernel(dst, a, b []float64, m, k, n int) {
	if serialRows(m, k*n) {
		mulBlock(dst, a, b, 0, m, k, n)
		return
	}
	parallelRows(m, gemmArgs{kind: gemmF64, dst: dst, a: a, b: b, m: m, k: k, n: n})
}

// mulBlock computes rows [r0, r1) of dst = a @ b in four-row panels.
//
//pelican:noalloc
func mulBlock(dst, a, b []float64, r0, r1, k, n int) {
	i := r0
	for ; i+4 <= r1; i += 4 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		d0 := dst[(i+0)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n]
		d2 := dst[(i+2)*n : (i+3)*n]
		d3 := dst[(i+3)*n : (i+4)*n]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for p := 0; p < k; p++ {
			av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	// Remainder rows: the scalar axpy kernel.
	for ; i < r1; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulKernelTransA computes dst = aᵀ @ b, a: k×m, b: k×n.
// dst[i][j] = sum_p a[p][i] * b[p][j]: the four a-values of a panel are
// adjacent within one a-row, and b streams sequentially exactly as in
// mulKernel.
//
//pelican:noalloc
func mulKernelTransA(dst, a, b []float64, m, k, n int) {
	if serialRows(m, k*n) {
		mulBlockTransA(dst, a, b, 0, m, m, k, n)
		return
	}
	parallelRows(m, gemmArgs{kind: gemmF64TransA, dst: dst, a: a, b: b, m: m, k: k, n: n})
}

// mulBlockTransA computes rows [r0, r1) of dst = aᵀ @ b.
//
//pelican:noalloc
func mulBlockTransA(dst, a, b []float64, r0, r1, m, k, n int) {
	i := r0
	for ; i+4 <= r1; i += 4 {
		d0 := dst[(i+0)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n]
		d2 := dst[(i+2)*n : (i+3)*n]
		d3 := dst[(i+3)*n : (i+4)*n]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for p := 0; p < k; p++ {
			ap := a[p*m+i : p*m+i+4 : p*m+i+4]
			av0, av1, av2, av3 := ap[0], ap[1], ap[2], ap[3]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < r1; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulKernelTransB computes dst = a @ bᵀ, a: m×k, b: n×k.
// dst[i][j] = dot(a_row_i, b_row_j): both operand rows are contiguous, so
// the tile holds two a-rows against four b-rows in eight dot accumulators.
//
//pelican:noalloc
func mulKernelTransB(dst, a, b []float64, m, k, n int) {
	if serialRows(m, k*n) {
		mulBlockTransB(dst, a, b, 0, m, k, n)
		return
	}
	parallelRows(m, gemmArgs{kind: gemmF64TransB, dst: dst, a: a, b: b, m: m, k: k, n: n})
}

// mulBlockTransB computes rows [r0, r1) of dst = a @ bᵀ.
//
//pelican:noalloc
func mulBlockTransB(dst, a, b []float64, r0, r1, k, n int) {
	i := r0
	for ; i+2 <= r1; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		d0 := dst[(i+0)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for p := 0; p < k; p++ {
				av0, av1 := a0[p], a1[p]
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1 float64
			for p, bv := range brow {
				s0 += a0[p] * bv
				s1 += a1[p] * bv
			}
			d0[j], d1[j] = s0, s1
		}
	}
	for ; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// MatVecInto computes dst = a @ x for a rank-2 a (m×k) and vector x (k),
// writing into vector dst (m).
//
//pelican:noalloc
func MatVecInto(dst, a, x *Tensor) {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatVecInto requires rank-2 a, got %v", a.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if len(x.data) != k || len(dst.data) != m {
		panic(fmt.Sprintf("tensor: MatVecInto shape mismatch a=%v x=%v dst=%v", a.shape, x.shape, dst.shape))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for p, av := range row {
			s += av * x.data[p]
		}
		dst.data[i] = s
	}
}

// Outer computes dst += alpha * x ⊗ y where x has length m, y has length n
// and dst is m×n. Used for rank-1 gradient accumulation.
//
//pelican:noalloc
func Outer(dst *Tensor, alpha float64, x, y *Tensor) {
	if len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor: Outer requires rank-2 dst, got %v", dst.shape))
	}
	m, n := dst.shape[0], dst.shape[1]
	if len(x.data) != m || len(y.data) != n {
		panic(fmt.Sprintf("tensor: Outer shape mismatch dst=%v x=%v y=%v", dst.shape, x.shape, y.shape))
	}
	for i := 0; i < m; i++ {
		xv := alpha * x.data[i]
		if xv == 0 {
			continue
		}
		drow := dst.data[i*n : (i+1)*n]
		for j, yv := range y.data {
			drow[j] += xv * yv
		}
	}
}
