package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// gemmRefF32 is the naive float64-accumulating reference the tiled f32
// kernel is checked against. w is (n, k): one row per output column, the
// kernel's pre-transposed weight layout.
func gemmRefF32(a, w, bias []float32, m, k, n int, act Act) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(w[j*k+p])
			}
			if bias != nil {
				s += float64(bias[j])
			}
			if act == ActReLU && s < 0 {
				s = 0
			}
			out[i*n+j] = float32(s)
		}
	}
	return out
}

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// TestGemmF32MatchesReferenceOddShapes sweeps shapes across tile
// boundaries (odd rows, column remainders, tiny k) and both epilogues.
func TestGemmF32MatchesReferenceOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 3, 5, 17, 64} {
		for _, k := range []int{1, 7, 33} {
			for _, n := range []int{1, 3, 4, 5, 19, 64} {
				a := randF32(rng, m*k)
				w := randF32(rng, k*n)
				bias := randF32(rng, n)
				for _, act := range []Act{ActNone, ActReLU} {
					for _, bi := range [][]float32{nil, bias} {
						want := gemmRefF32(a, w, bi, m, k, n, act)
						got := make([]float32, m*n)
						GemmBiasActF32(got, a, w, bi, m, k, n, act)
						for i := range want {
							if math.Abs(float64(got[i]-want[i])) > 1e-4 {
								t.Fatalf("m=%d k=%d n=%d act=%d bias=%v: [%d] got %v want %v",
									m, k, n, act, bi != nil, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestGemmF32EpilogueOnZeroInput pins that an all-zero input still gets
// the bias/activation epilogue on every tile path.
func TestGemmF32EpilogueOnZeroInput(t *testing.T) {
	m, k, n := 7, 16, 9 // odd row + column remainders
	a := make([]float32, m*k)
	w := randF32(rand.New(rand.NewSource(3)), k*n)
	bias := make([]float32, n)
	for j := range bias {
		bias[j] = float32(j) - 3.5
	}
	got := make([]float32, m*n)
	GemmBiasActF32(got, a, w, bias, m, k, n, ActReLU)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := bias[j]
			if want < 0 {
				want = 0
			}
			if got[i*n+j] != want {
				t.Fatalf("[%d,%d] = %v, want %v", i, j, got[i*n+j], want)
			}
		}
	}
}

// TestGemmF32Parallel runs a product large enough to cross the worker-pool
// threshold and checks it against the reference (exercised under -race in
// CI).
func TestGemmF32Parallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 96, 128, 96
	a := randF32(rng, m*k)
	w := randF32(rng, k*n)
	want := gemmRefF32(a, w, nil, m, k, n, ActNone)
	got := make([]float32, m*n)
	GemmBiasActF32(got, a, w, nil, m, k, n, ActNone)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("[%d] got %v want %v", i, got[i], want[i])
		}
	}
}
