package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPutFetchRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("pelican artifact payload")
	v, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 12 {
		t.Fatalf("version %q: want 12 hex chars", v)
	}
	got, err := s.Fetch(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetch returned different bytes")
	}
	// Idempotent re-put.
	v2, err := s.Put(payload)
	if err != nil || v2 != v {
		t.Fatalf("re-put: version %q err %v, want %q nil", v2, err, v)
	}
	st := s.Stats()
	if st.Artifacts != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("stats %+v: want 1 artifact, %d bytes", st, len(payload))
	}
}

func TestFetchMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.Fetch("deadbeef0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCorruptArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	v, err := s.Put([]byte("soon to be corrupted"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in place.
	path := s.artifactPath(v)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(v); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// The artifact moved to quarantine: gone from the CAS, never deleted.
	if s.Has(v) {
		t.Fatal("corrupt artifact still resident in CAS")
	}
	quar := s.QuarantinedVersions()
	if len(quar) != 1 || quar[0] != v {
		t.Fatalf("quarantine = %v, want [%s]", quar, v)
	}
	reason, err := os.ReadFile(filepath.Join(dir, "cas", "quarantine", v+reasonExt))
	if err != nil || len(reason) == 0 {
		t.Fatalf("quarantine reason missing: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Artifacts != 0 {
		t.Fatalf("stats %+v: want quarantined=1 artifacts=0", st)
	}
	// A second fetch reports not-found, not corrupt: the artifact is out
	// of serving circulation.
	if _, err := s.Fetch(v); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refetch err = %v, want ErrNotFound", err)
	}
}

func TestSizeMismatchDetected(t *testing.T) {
	s, _ := Open(t.TempDir())
	v, _ := s.Put([]byte("original content here"))
	if err := os.WriteFile(s.artifactPath(v), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(v); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRefcountGC(t *testing.T) {
	s, _ := Open(t.TempDir())
	v1, _ := s.Put([]byte("artifact one"))
	v2, _ := s.Put([]byte("artifact two"))
	v3, _ := s.Put([]byte("artifact three"))
	s.Retain(v1)
	s.Retain(v2)
	s.Retain(v2) // two slots share v2
	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != v3 {
		t.Fatalf("gc removed %v, want [%s]", removed, v3)
	}
	s.Release(v2)
	if removed, _ = s.GC(); len(removed) != 0 {
		t.Fatalf("gc removed %v while one ref remains", removed)
	}
	s.Release(v2)
	if removed, _ = s.GC(); len(removed) != 1 || removed[0] != v2 {
		t.Fatalf("gc removed %v, want [%s]", removed, v2)
	}
	if !s.Has(v1) {
		t.Fatal("retained artifact was deleted")
	}
	if st := s.Stats(); st.GCTotal != 2 || st.Artifacts != 1 {
		t.Fatalf("stats %+v: want gc=2 artifacts=1", st)
	}
}

func TestGCSparesQuarantine(t *testing.T) {
	s, _ := Open(t.TempDir())
	v, _ := s.Put([]byte("will be quarantined"))
	if err := s.Quarantine(v, "test says so"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if quar := s.QuarantinedVersions(); len(quar) != 1 {
		t.Fatalf("quarantine = %v after GC, want the artifact kept", quar)
	}
}

func TestOpenInventoriesExisting(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put([]byte("persisted across opens"))
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Artifacts != 1 {
		t.Fatalf("reopened stats %+v: want 1 artifact", st)
	}
}

func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "two" {
		t.Fatalf("read %q, want %q", b, "two")
	}
	// No tmp litter.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(ents))
	}
}
