// Package store is the durable half of the control plane: a
// content-addressed artifact store (CAS) plus an append-only registry
// journal with compacted snapshots. pelican-serve writes every slot
// lifecycle op through the journal and every artifact through the CAS,
// so a process death — clean or kill -9 — loses nothing but the ops
// that had not yet returned to their caller.
//
// The package is stdlib-only and deliberately silent: it returns
// structured recovery reports instead of logging, so callers own the
// operator-facing story.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	artifactExt = ".plcn"
	sumExt      = ".plcn.sum"
	reasonExt   = ".plcn.reason"
)

// ErrCorrupt wraps any integrity failure on read: size, CRC-32, or
// SHA-256 mismatch against the sidecar written at Put time. A corrupt
// artifact is moved to quarantine before the error is returned, so it
// can never be served and never silently vanishes.
var ErrCorrupt = errors.New("store: artifact failed verification")

// ErrNotFound reports a version absent from the CAS.
var ErrNotFound = errors.New("store: artifact not found")

// Version is the content address of an artifact: the first 12 hex
// digits of its SHA-256, matching the version stamped into serve
// artifacts so the CAS key and the registry version are the same
// string.
func Version(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// Stats is a point-in-time snapshot of the store for telemetry.
type Stats struct {
	Artifacts   int   // verified artifacts resident in the CAS
	Bytes       int64 // total bytes of those artifacts
	GCTotal     int64 // artifacts deleted by GC since process start
	Quarantined int64 // artifacts quarantined since process start
}

// Store is the on-disk state directory: CAS under cas/, quarantine
// under cas/quarantine/, journal under journal/. Safe for concurrent
// use.
type Store struct {
	dir     string
	casDir  string
	quarDir string

	mu        sync.Mutex
	refs      map[string]int
	artifacts int
	bytes     int64

	gcTotal     atomic.Int64
	quarantined atomic.Int64
}

// Open creates (if needed) and opens the state directory. Existing CAS
// entries are inventoried but not verified — verification happens on
// every Fetch, which is the only path to serving bytes.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		casDir:  filepath.Join(dir, "cas"),
		quarDir: filepath.Join(dir, "cas", "quarantine"),
		refs:    map[string]int{},
	}
	for _, d := range []string{s.casDir, s.quarDir, filepath.Join(dir, "journal")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	ents, err := os.ReadDir(s.casDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), artifactExt) || strings.HasSuffix(e.Name(), sumExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.artifacts++
		s.bytes += info.Size()
	}
	return s, nil
}

// Dir returns the root state directory.
func (s *Store) Dir() string { return s.dir }

// JournalDir returns the directory the registry journal lives in.
func (s *Store) JournalDir() string { return filepath.Join(s.dir, "journal") }

func (s *Store) artifactPath(version string) string {
	return filepath.Join(s.casDir, version+artifactExt)
}

// Put stores b under its content address and returns the version. The
// write is atomic (tmp + rename) and fsynced — after Put returns, the
// artifact survives power loss. Put is idempotent: an existing entry
// for the same version is left untouched.
func (s *Store) Put(b []byte) (string, error) {
	version := Version(b)
	path := s.artifactPath(version)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return version, nil
	}
	sum := fmt.Sprintf("sha256 %x crc32 %08x size %d\n", sha256.Sum256(b), crc32.ChecksumIEEE(b), len(b))
	if err := writeAtomic(filepath.Join(s.casDir, version+sumExt), []byte(sum)); err != nil {
		return "", err
	}
	if err := writeAtomic(path, b); err != nil {
		return "", err
	}
	s.artifacts++
	s.bytes += int64(len(b))
	return version, nil
}

// Fetch reads and verifies the artifact for version. Every read pays
// full verification: size and CRC-32 against the sidecar, then SHA-256
// against the content address itself. Any mismatch quarantines the
// artifact and returns ErrCorrupt — corrupt bytes are never handed to
// a caller.
func (s *Store) Fetch(version string) ([]byte, error) {
	b, err := os.ReadFile(s.artifactPath(version))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, version)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.verify(version, b); err != nil {
		qerr := s.Quarantine(version, err.Error())
		if qerr != nil {
			return nil, fmt.Errorf("%w (quarantine also failed: %v)", err, qerr)
		}
		return nil, err
	}
	return b, nil
}

// verify checks b against the content address and, when present, the
// sidecar written at Put time.
func (s *Store) verify(version string, b []byte) error {
	if got := Version(b); got != version {
		return fmt.Errorf("%w: %s: sha256 mismatch (content hashes to %s)", ErrCorrupt, version, got)
	}
	sc, err := os.ReadFile(filepath.Join(s.casDir, version+sumExt))
	if err != nil {
		return nil // sidecar lost: the content address above is authoritative
	}
	var wantSHA string
	var wantCRC uint32
	var wantSize int
	if _, err := fmt.Sscanf(string(sc), "sha256 %s crc32 %x size %d", &wantSHA, &wantCRC, &wantSize); err != nil {
		return nil
	}
	if len(b) != wantSize {
		return fmt.Errorf("%w: %s: size %d, want %d", ErrCorrupt, version, len(b), wantSize)
	}
	if got := crc32.ChecksumIEEE(b); got != wantCRC {
		return fmt.Errorf("%w: %s: crc32 %08x, want %08x", ErrCorrupt, version, got, wantCRC)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(b)); got != wantSHA {
		return fmt.Errorf("%w: %s: full sha256 mismatch", ErrCorrupt, version)
	}
	return nil
}

// Has reports whether version is resident (verified or not) in the CAS.
func (s *Store) Has(version string) bool {
	_, err := os.Stat(s.artifactPath(version))
	return err == nil
}

// Retain adds one reference to version. References are in-memory —
// they encode the live topology (slots plus the rollback target) and
// are rebuilt from the journal at recovery.
func (s *Store) Retain(version string) {
	s.mu.Lock()
	s.refs[version]++
	s.mu.Unlock()
}

// Release drops one reference to version. It never deletes — call GC
// to sweep unreferenced artifacts.
func (s *Store) Release(version string) {
	s.mu.Lock()
	if s.refs[version] > 0 {
		s.refs[version]--
	}
	if s.refs[version] == 0 {
		delete(s.refs, version)
	}
	s.mu.Unlock()
}

// GC deletes every CAS artifact with zero references and returns the
// versions removed. Quarantined artifacts are never touched.
func (s *Store) GC() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.casDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var removed []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, artifactExt) || strings.HasSuffix(name, sumExt) {
			continue
		}
		version := strings.TrimSuffix(name, artifactExt)
		if s.refs[version] > 0 {
			continue
		}
		info, _ := e.Info()
		if err := os.Remove(filepath.Join(s.casDir, name)); err != nil {
			return removed, fmt.Errorf("store: gc %s: %w", version, err)
		}
		os.Remove(filepath.Join(s.casDir, version+sumExt))
		removed = append(removed, version)
		s.artifacts--
		if info != nil {
			s.bytes -= info.Size()
		}
		s.gcTotal.Add(1)
	}
	sort.Strings(removed)
	return removed, nil
}

// Quarantine moves version (and its sidecar) into cas/quarantine/ and
// records why. Quarantined artifacts are never deleted and never
// served; an operator inspects and removes them by hand.
func (s *Store) Quarantine(version, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.artifactPath(version)
	info, err := os.Stat(src)
	if err != nil {
		return fmt.Errorf("store: quarantine %s: %w", version, err)
	}
	if err := os.Rename(src, filepath.Join(s.quarDir, version+artifactExt)); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", version, err)
	}
	os.Rename(filepath.Join(s.casDir, version+sumExt), filepath.Join(s.quarDir, version+sumExt))
	writeAtomic(filepath.Join(s.quarDir, version+reasonExt), []byte(reason+"\n"))
	s.artifacts--
	s.bytes -= info.Size()
	delete(s.refs, version)
	s.quarantined.Add(1)
	return nil
}

// QuarantinedVersions lists the versions currently sitting in
// quarantine (for reporting and tests).
func (s *Store) QuarantinedVersions() []string {
	ents, err := os.ReadDir(s.quarDir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, artifactExt) || strings.HasSuffix(name, sumExt) {
			continue
		}
		out = append(out, strings.TrimSuffix(name, artifactExt))
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the store counters for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{Artifacts: s.artifacts, Bytes: s.bytes}
	s.mu.Unlock()
	st.GCTotal = s.gcTotal.Load()
	st.Quarantined = s.quarantined.Load()
	return st
}

// WriteAtomic writes b to path via tmp + rename with fsync of both the
// file and its directory. Exported for sibling state writers (adapt
// checkpoints, journal snapshots) so every durable file in the state
// dir shares one write discipline.
func WriteAtomic(path string, b []byte) error { return writeAtomic(path, b) }

func writeAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
