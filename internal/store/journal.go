package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal op verbs. They mirror the registry's transition ops verbatim
// (plus "stats" for counter checkpoints) so a journal reads like the
// registry history it is.
const (
	OpLoad     = "load"
	OpPromote  = "promote"
	OpRollback = "rollback"
	OpUnload   = "unload"
	OpStats    = "stats"
)

// Slot names the journal's replay semantics are keyed on. They must
// stay in sync with the registry's reserved tags.
const (
	slotLive   = "live"
	slotShadow = "shadow"
)

// compactEvery bounds journal growth: after this many appends since
// the last snapshot the log compacts itself.
const compactEvery = 512

// StatsRecord is one tag's persistent counters as checkpointed into
// the journal. Latest record wins on replay.
type StatsRecord struct {
	Records         int64 `json:"records"`
	Attacks         int64 `json:"attacks"`
	Mirrored        int64 `json:"mirrored,omitempty"`
	MirrorDropped   int64 `json:"mirror_dropped,omitempty"`
	Agreements      int64 `json:"agreements,omitempty"`
	Disagreements   int64 `json:"disagreements,omitempty"`
	Shed            int64 `json:"shed,omitempty"`
	DeadlineExpired int64 `json:"deadline_expired,omitempty"`
}

// Record is one journal entry. Lifecycle ops carry Tag and Version;
// stats checkpoints carry the full per-tag counter map.
type Record struct {
	Seq     uint64                 `json:"seq"`
	Op      string                 `json:"op"`
	Tag     string                 `json:"tag,omitempty"`
	Version string                 `json:"version,omitempty"`
	At      time.Time              `json:"at"`
	Stats   map[string]StatsRecord `json:"stats,omitempty"`
}

// Topology is the materialized slot→version state a journal replay
// produces: exactly what the registry held when the last record was
// appended.
type Topology struct {
	Slots map[string]string      `json:"slots"` // tag -> version
	Prev  string                 `json:"prev,omitempty"`
	Stats map[string]StatsRecord `json:"stats,omitempty"`
}

// NewTopology returns an empty topology.
func NewTopology() Topology {
	return Topology{Slots: map[string]string{}, Stats: map[string]StatsRecord{}}
}

// Clone deep-copies t.
func (t Topology) Clone() Topology {
	c := Topology{Slots: make(map[string]string, len(t.Slots)), Prev: t.Prev, Stats: make(map[string]StatsRecord, len(t.Stats))}
	for k, v := range t.Slots {
		c.Slots[k] = v
	}
	for k, v := range t.Stats {
		c.Stats[k] = v
	}
	return c
}

// Apply advances the topology by one record, mirroring the registry's
// transition semantics exactly:
//
//   - load live displaces the old live into the rollback slot;
//   - load of any other tag overwrites it;
//   - promote moves the shadow version to live, displacing the old
//     live into the rollback slot and emptying shadow;
//   - rollback swaps live with the rollback slot (so applying it twice
//     rolls forward);
//   - unload clears a tag;
//   - stats carried by any record (lifecycle ops piggyback a checkpoint
//     on their fsync) replace the counter map entries, latest wins.
func (t *Topology) Apply(r Record) {
	if t.Slots == nil {
		t.Slots = map[string]string{}
	}
	if t.Stats == nil {
		t.Stats = map[string]StatsRecord{}
	}
	for tag, st := range r.Stats {
		t.Stats[tag] = st
	}
	switch r.Op {
	case OpLoad:
		if r.Tag == slotLive {
			if cur, ok := t.Slots[slotLive]; ok {
				t.Prev = cur
			}
		}
		t.Slots[r.Tag] = r.Version
	case OpPromote:
		if cur, ok := t.Slots[slotLive]; ok {
			t.Prev = cur
		}
		t.Slots[slotLive] = r.Version
		delete(t.Slots, slotShadow)
	case OpRollback:
		old := t.Slots[slotLive]
		t.Slots[slotLive] = r.Version
		t.Prev = old
	case OpUnload:
		delete(t.Slots, r.Tag)
	case OpStats:
		// Stats-only checkpoint: the merge above did the work.
	}
}

// RecoverInfo reports what a journal open found on disk.
type RecoverInfo struct {
	SnapshotSeq uint64        // seq of the snapshot replay started from (0: none)
	Replayed    int           // journal records applied on top of the snapshot
	Truncated   int           // torn/corrupt trailing records cut from the journal
	Duration    time.Duration // wall time of the replay
}

// Log is the registry write-ahead journal: an append-only file of
// CRC-framed JSONL records plus a compacted snapshot. The Log keeps
// the materialized topology in memory, so snapshots are a plain dump
// rather than a second replay. Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	seq      uint64
	appends  int // since last compact
	topo     Topology
	snapshot string
	journal  string
}

// OpenLog opens (creating if needed) the journal in dir and replays
// snapshot + journal into the returned topology. Torn or corrupt
// trailing records are truncated from the file — the caller decides
// how loudly to report that via RecoverInfo.Truncated.
func OpenLog(dir string) (*Log, RecoverInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoverInfo{}, fmt.Errorf("store: %w", err)
	}
	l := &Log{
		dir:      dir,
		topo:     NewTopology(),
		snapshot: filepath.Join(dir, "snapshot.json"),
		journal:  filepath.Join(dir, "wal.jsonl"),
	}
	start := time.Now()
	info, err := l.replay()
	if err != nil {
		return nil, info, err
	}
	f, err := os.OpenFile(l.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("store: %w", err)
	}
	l.f = f
	info.Duration = time.Since(start)
	return l, info, nil
}

// replay loads the snapshot (if any) and applies every valid journal
// record after it. The file is truncated at the first invalid record:
// a torn tail from a mid-append crash, or anything unreadable after
// it, is cut so the next append lands on a clean prefix.
func (l *Log) replay() (RecoverInfo, error) {
	var info RecoverInfo
	if b, err := os.ReadFile(l.snapshot); err == nil {
		if parseSnapshot(b, &l.topo, &l.seq) {
			info.SnapshotSeq = l.seq
		}
	}
	b, err := os.ReadFile(l.journal)
	if os.IsNotExist(err) {
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("store: %w", err)
	}
	off := 0
	for off < len(b) {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			info.Truncated++ // torn tail: no terminating newline
			break
		}
		var r Record
		if parseLine(b[off:off+nl+1], &r) && r.Seq <= info.SnapshotSeq {
			// Valid record already folded into the snapshot (crash landed
			// between snapshot write and journal truncate): skip it.
			off += nl + 1
			continue
		}
		if !parseLine(b[off:off+nl+1], &r) || r.Seq <= l.seq {
			// Torn, corrupt, or out-of-order: everything from here on is
			// suspect — a valid prefix is all replay trusts.
			info.Truncated += countLines(b[off:])
			break
		}
		l.topo.Apply(r)
		l.seq = r.Seq
		info.Replayed++
		off += nl + 1
	}
	if off < len(b) {
		if err := os.Truncate(l.journal, int64(off)); err != nil {
			return info, fmt.Errorf("store: truncate torn journal: %w", err)
		}
	}
	return info, nil
}

// countLines counts newline-terminated lines plus a trailing fragment.
func countLines(b []byte) int {
	n := bytes.Count(b, []byte{'\n'})
	if len(b) > 0 && b[len(b)-1] != '\n' {
		n++
	}
	return n
}

// parseLine decodes one CRC-framed JSONL line ("%08x %s\n") into v,
// reporting whether the frame and checksum are intact.
func parseLine(line []byte, v any) bool {
	line = bytes.TrimSuffix(line, []byte{'\n'})
	if len(line) < 10 || line[8] != ' ' {
		return false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return false
	}
	return json.Unmarshal(payload, v) == nil
}

// frameLine encodes v as one CRC-framed JSONL line.
func frameLine(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	out := make([]byte, 0, len(payload)+10)
	out = append(out, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// snapshotWire is the snapshot file payload.
type snapshotWire struct {
	Seq  uint64    `json:"seq"`
	Topo Topology  `json:"topology"`
	At   time.Time `json:"at"`
}

func parseSnapshot(b []byte, topo *Topology, seq *uint64) bool {
	var w snapshotWire
	if !parseLine(b, &w) {
		return false
	}
	*topo = w.Topo.Clone()
	*seq = w.Seq
	return true
}

// Append journals one record, assigning it the next sequence number,
// fsyncing before return (lifecycle ops are rare; the fsync is the
// durability contract), and advancing the in-memory topology. Crossing
// the compaction threshold folds the journal into a fresh snapshot.
func (l *Log) Append(op, tag, version string, stats map[string]StatsRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r := Record{Seq: l.seq, Op: op, Tag: tag, Version: version, At: time.Now().UTC(), Stats: stats}
	line, err := frameLine(r)
	if err != nil {
		l.seq--
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	l.topo.Apply(r)
	l.appends++
	if l.appends >= compactEvery {
		return l.compactLocked()
	}
	return nil
}

// Topology returns a deep copy of the current materialized state.
func (l *Log) Topology() Topology {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.topo.Clone()
}

// Reset replaces the materialized topology (recovery prunes slots
// whose artifacts failed verification) and compacts, so the pruned
// state is what the next restart replays.
func (l *Log) Reset(t Topology) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.topo = t.Clone()
	return l.compactLocked()
}

// Compact folds the journal into the snapshot: the current topology is
// written atomically, then the journal is emptied. A crash between the
// two steps is safe — replay skips journal records at or below the
// snapshot's seq.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	line, err := frameLine(snapshotWire{Seq: l.seq, Topo: l.topo, At: time.Now().UTC()})
	if err != nil {
		return err
	}
	if err := writeAtomic(l.snapshot, line); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: journal truncate: %w", err)
	}
	l.appends = 0
	return nil
}

// Close releases the journal file handle. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
