package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openLog(t *testing.T, dir string) (*Log, RecoverInfo) {
	t.Helper()
	l, info, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, info
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info := openLog(t, dir)
	if info.Replayed != 0 || info.Truncated != 0 {
		t.Fatalf("fresh log reported %+v", info)
	}
	mustAppend(t, l, OpLoad, "live", "v1aaaaaaaaaa")
	mustAppend(t, l, OpLoad, "shadow", "v2bbbbbbbbbb")
	mustAppend(t, l, OpPromote, "live", "v2bbbbbbbbbb")
	l.Close()

	l2, info := openLog(t, dir)
	if info.Replayed != 3 || info.Truncated != 0 {
		t.Fatalf("replay reported %+v, want 3 replayed", info)
	}
	topo := l2.Topology()
	want := map[string]string{"live": "v2bbbbbbbbbb"}
	if !reflect.DeepEqual(topo.Slots, want) || topo.Prev != "v1aaaaaaaaaa" {
		t.Fatalf("topology %+v, want slots %v prev v1aaaaaaaaaa", topo, want)
	}
}

func mustAppend(t *testing.T, l *Log, op, tag, version string) {
	t.Helper()
	if err := l.Append(op, tag, version, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologySemantics(t *testing.T) {
	topo := NewTopology()
	apply := func(op, tag, version string) {
		topo.Apply(Record{Op: op, Tag: tag, Version: version})
	}
	apply(OpLoad, "live", "v1")
	apply(OpLoad, "live", "v2") // displaces v1 into the rollback slot
	if topo.Slots["live"] != "v2" || topo.Prev != "v1" {
		t.Fatalf("after live reload: %+v", topo)
	}
	apply(OpLoad, "shadow", "v3")
	apply(OpPromote, "live", "v3")
	if topo.Slots["live"] != "v3" || topo.Prev != "v2" {
		t.Fatalf("after promote: %+v", topo)
	}
	if _, ok := topo.Slots["shadow"]; ok {
		t.Fatal("promote left the shadow slot occupied")
	}
	// Rollback twice rolls forward.
	apply(OpRollback, "live", "v2")
	if topo.Slots["live"] != "v2" || topo.Prev != "v3" {
		t.Fatalf("after rollback: %+v", topo)
	}
	apply(OpRollback, "live", "v3")
	if topo.Slots["live"] != "v3" || topo.Prev != "v2" {
		t.Fatalf("after second rollback: %+v", topo)
	}
	apply(OpLoad, "canary1", "v4")
	apply(OpUnload, "canary1", "v4")
	if _, ok := topo.Slots["canary1"]; ok {
		t.Fatal("unload left the canary slot occupied")
	}
	topo.Apply(Record{Op: OpStats, Stats: map[string]StatsRecord{"live": {Records: 10}}})
	topo.Apply(Record{Op: OpStats, Stats: map[string]StatsRecord{"live": {Records: 25}}})
	if topo.Stats["live"].Records != 25 {
		t.Fatalf("stats replay: %+v, want latest-wins 25", topo.Stats)
	}
}

// TestRollbackTwiceAcrossRestart journals rollback records around a
// reopen and asserts roll-forward semantics survive the restart
// boundary.
func TestRollbackTwiceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1")
	mustAppend(t, l, OpLoad, "shadow", "v2")
	mustAppend(t, l, OpPromote, "live", "v2")
	mustAppend(t, l, OpRollback, "live", "v1")
	l.Close()

	l2, _ := openLog(t, dir)
	topo := l2.Topology()
	if topo.Slots["live"] != "v1" || topo.Prev != "v2" {
		t.Fatalf("recovered mid-rollback topology %+v", topo)
	}
	mustAppend(t, l2, OpRollback, "live", "v2")
	l2.Close()

	l3, _ := openLog(t, dir)
	topo = l3.Topology()
	if topo.Slots["live"] != "v2" || topo.Prev != "v1" {
		t.Fatalf("rollback-twice across restart: %+v, want live v2 prev v1", topo)
	}
}

// TestTornTailFuzz truncates the journal at every byte offset of its
// last record and asserts replay never fails, recovers the exact
// pre-append state, and truncates the torn bytes so the next append
// lands cleanly.
func TestTornTailFuzz(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1aaaaaaaaaa")
	mustAppend(t, l, OpLoad, "shadow", "v2bbbbbbbbbb")
	path := l.journal
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpPromote, "live", "v2bbbbbbbbbb")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if len(full) <= len(intact) {
		t.Fatal("third append did not grow the journal")
	}
	for cut := len(intact); cut < len(full); cut++ {
		work := filepath.Join(t.TempDir(), "journal")
		if err := os.MkdirAll(work, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(work, "wal.jsonl"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lr, info, err := OpenLog(work)
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		wantTrunc := 0
		if cut > len(intact) {
			wantTrunc = 1
		}
		if info.Replayed != 2 || info.Truncated != wantTrunc {
			t.Fatalf("cut=%d: info %+v, want 2 replayed %d truncated", cut, info, wantTrunc)
		}
		topo := lr.Topology()
		if topo.Slots["live"] != "v1aaaaaaaaaa" || topo.Slots["shadow"] != "v2bbbbbbbbbb" {
			t.Fatalf("cut=%d: topology %+v is not the valid prefix", cut, topo)
		}
		// The torn bytes are gone: the file is exactly the valid prefix.
		onDisk, _ := os.ReadFile(filepath.Join(work, "wal.jsonl"))
		if !bytes.Equal(onDisk, intact) {
			t.Fatalf("cut=%d: journal not truncated to valid prefix (%d bytes, want %d)", cut, len(onDisk), len(intact))
		}
		// And the log is writable: the lost op can be re-journaled.
		if err := lr.Append(OpPromote, "live", "v2bbbbbbbbbb", nil); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		lr.Close()
		lr2, info2, err := OpenLog(work)
		if err != nil || info2.Replayed != 3 {
			t.Fatalf("cut=%d: re-replay %+v err %v, want 3 replayed", cut, info2, err)
		}
		if lr2.Topology().Slots["live"] != "v2bbbbbbbbbb" {
			t.Fatalf("cut=%d: re-journaled promote lost", cut)
		}
		lr2.Close()
	}
}

func TestGarbageMidJournalTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1")
	intact, _ := os.ReadFile(l.journal)
	mustAppend(t, l, OpLoad, "shadow", "v2")
	l.Close()
	// Corrupt the middle record's checksum, leaving the file length alone.
	b, _ := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	b[len(intact)] ^= 0xFF
	os.WriteFile(filepath.Join(dir, "wal.jsonl"), b, 0o644)

	l2, info := openLog(t, dir)
	if info.Replayed != 1 || info.Truncated != 1 {
		t.Fatalf("info %+v, want 1 replayed 1 truncated", info)
	}
	topo := l2.Topology()
	if topo.Slots["live"] != "v1" {
		t.Fatalf("topology %+v", topo)
	}
	if _, ok := topo.Slots["shadow"]; ok {
		t.Fatal("corrupt record was applied")
	}
}

func TestCompactionAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1")
	mustAppend(t, l, OpLoad, "shadow", "v2")
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	// Journal emptied, snapshot holds the state.
	if fi, err := os.Stat(filepath.Join(dir, "wal.jsonl")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not emptied by compaction: %v", err)
	}
	mustAppend(t, l, OpPromote, "live", "v2")
	l.Close()

	l2, info := openLog(t, dir)
	if info.SnapshotSeq != 2 || info.Replayed != 1 {
		t.Fatalf("info %+v, want snapshot seq 2 + 1 replayed", info)
	}
	topo := l2.Topology()
	if topo.Slots["live"] != "v2" || topo.Prev != "v1" {
		t.Fatalf("post-compaction topology %+v", topo)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	for i := 0; i < compactEvery+3; i++ {
		mustAppend(t, l, OpLoad, "live", "v1")
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// The journal crossed the threshold and folded into the snapshot:
	// only the post-compaction tail remains.
	if got := fi.Size(); got > int64(3*128) {
		t.Fatalf("journal is %d bytes after auto-compaction threshold", got)
	}
	l.Close()
	l2, info := openLog(t, dir)
	if l2.Topology().Slots["live"] != "v1" {
		t.Fatalf("state lost across auto-compaction: %+v (info %+v)", l2.Topology(), info)
	}
}

func TestResetPrunesState(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1")
	mustAppend(t, l, OpLoad, "shadow", "vbad")
	topo := l.Topology()
	delete(topo.Slots, "shadow") // recovery quarantined the shadow artifact
	if err := l.Reset(topo); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, _ := openLog(t, dir)
	got := l2.Topology()
	if _, ok := got.Slots["shadow"]; ok {
		t.Fatal("pruned slot resurrected on replay")
	}
	if got.Slots["live"] != "v1" {
		t.Fatalf("topology %+v", got)
	}
}

func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir)
	mustAppend(t, l, OpLoad, "live", "v1")
	mustAppend(t, l, OpLoad, "shadow", "v2")
	// Simulate the torn compaction: snapshot written, journal NOT
	// truncated (crash between the two steps).
	pre, _ := os.ReadFile(l.journal)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(l.journal, pre, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, info := openLog(t, dir)
	// The stale journal records are at/below the snapshot seq: skipped,
	// not double-applied, not treated as corruption.
	if info.Replayed != 0 || info.Truncated != 0 {
		t.Fatalf("info %+v, want 0 replayed 0 truncated", info)
	}
	topo := l2.Topology()
	if topo.Slots["live"] != "v1" || topo.Slots["shadow"] != "v2" {
		t.Fatalf("topology %+v", topo)
	}
}
