// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure in the paper's evaluation (§V), each running the
// corresponding experiment at the smoke profile so `go test -bench=.`
// regenerates every artifact's machinery in minutes, plus kernel
// micro-benchmarks for the layers Pelican is built from.
//
// The default profile (used for the recorded EXPERIMENTS.md numbers) is
// reached through cmd/pelican-bench; these benchmarks verify the same code
// paths end-to-end and measure their cost.
package repro_test

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// smoke returns the benchmark workload profile.
func smoke() experiments.Profile { return experiments.SmokeProfile() }

// BenchmarkTable1ParameterSetting regenerates Table I (parameter echo).
func BenchmarkTable1ParameterSetting(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		if out := experiments.FormatTable1(p); out == "" {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkFig2Degradation regenerates Fig. 2: the LuNet depth sweep whose
// accuracy degradation motivates residual learning.
func BenchmarkFig2Degradation(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no sweep points")
		}
	}
}

// benchFourNets runs the four-network experiment that powers Fig. 5 and
// Tables II–IV on one dataset.
func benchFourNets(b *testing.B, id experiments.DatasetID) {
	b.Helper()
	p := smoke()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFourNets(p, id, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Evals) != 4 {
			b.Fatalf("got %d evals", len(res.Evals))
		}
	}
}

// BenchmarkFig5UNSWLossCurves regenerates Fig. 5(a)/(b): train and test
// loss curves of the four networks on UNSW-NB15.
func BenchmarkFig5UNSWLossCurves(b *testing.B) { benchFourNets(b, experiments.UNSW) }

// BenchmarkFig5NSLLossCurves regenerates Fig. 5(c)/(d) on NSL-KDD.
func BenchmarkFig5NSLLossCurves(b *testing.B) { benchFourNets(b, experiments.NSL) }

// BenchmarkTable2TruePositivesFalseAlarms regenerates Table II: total TP
// and FP of the four networks on both datasets.
func BenchmarkTable2TruePositivesFalseAlarms(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		nsl, err := experiments.RunFourNets(p, experiments.NSL, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		unsw, err := experiments.RunFourNets(p, experiments.UNSW, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if out := experiments.FormatTable2(nsl, unsw); out == "" {
			b.Fatal("empty Table II")
		}
	}
}

// BenchmarkTable3NSLKDD regenerates Table III: DR/ACC/FAR on NSL-KDD.
func BenchmarkTable3NSLKDD(b *testing.B) { benchFourNets(b, experiments.NSL) }

// BenchmarkTable4UNSWNB15 regenerates Table IV: DR/ACC/FAR on UNSW-NB15.
func BenchmarkTable4UNSWNB15(b *testing.B) { benchFourNets(b, experiments.UNSW) }

// BenchmarkTable5ComparativeStudy regenerates Table V: Pelican against
// AdaBoost, SVM (RBF), HAST-IDS, CNN, LSTM, MLP, RF and LuNet.
func BenchmarkTable5ComparativeStudy(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != len(experiments.Table5Designs) {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// BenchmarkExtAnomalyComparison runs the §VI anomaly-vs-supervised study.
func BenchmarkExtAnomalyComparison(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAnomalyComparison(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkExtSignatureStudy runs the §VI signature variant-blindness
// study.
func BenchmarkExtSignatureStudy(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSignatureStudy(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkExtResBlkAblation runs the shortcut-placement ablation.
func BenchmarkExtResBlkAblation(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblation(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(experiments.AblationVariants) {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkExtTransferLearning runs the §V-G transfer-learning study.
func BenchmarkExtTransferLearning(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTransfer(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if res.TargetRecords <= 0 {
			b.Fatal("bad transfer result")
		}
	}
}

// BenchmarkTable5ExtendedBaselines runs the extra classical baselines.
func BenchmarkTable5ExtendedBaselines(b *testing.B) {
	p := smoke()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5Extended(p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != len(experiments.Table5XDesigns) {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// --- kernel micro-benchmarks ------------------------------------------------

// pelicanAtPaperWidth builds Pelican at the UNSW feature width (196) for
// layer-cost measurement.
func pelicanAtPaperWidth(tb testing.TB) (*nn.Network, *tensor.Tensor, []int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	const features, classes, batch = 196, 10, 64
	stack := models.BuildPelican(rng, rand.New(rand.NewSource(2)),
		models.PaperBlockConfig(features), classes)
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	x := tensor.RandNormal(rng, 0, 1, batch, 1, features)
	y := make([]int, batch)
	for i := range y {
		y[i] = i % classes
	}
	return net, x, y
}

// BenchmarkPelicanForward measures one inference pass of the full
// Residual-41 network at the paper's UNSW width (batch 64).
func BenchmarkPelicanForward(b *testing.B) {
	net, x, _ := pelicanAtPaperWidth(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

// BenchmarkInferF32 measures the compiled float32 inference engine on the
// exact BenchmarkPelicanForward workload (Residual-41, UNSW width, batch
// 64) — the f64-vs-f32 serving A/B pair. records/s is reported so the two
// engines compare directly in one run.
func BenchmarkInferF32(b *testing.B) {
	net, x, _ := pelicanAtPaperWidth(b)
	plan, err := infer.Compile(net)
	if err != nil {
		b.Fatal(err)
	}
	eng := plan.NewEngine()
	const batch = 64
	in := eng.In(batch)
	for i, v := range x.Data() {
		in[i] = float32(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(batch)
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkPelicanTrainStep measures one full train step (forward,
// backward, RMSprop update) of Residual-41 at the paper's UNSW width.
func BenchmarkPelicanTrainStep(b *testing.B) {
	net, x, y := pelicanAtPaperWidth(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(x, y)
	}
}

// BenchmarkResidualBlockForward isolates one ResBlk at UNSW width.
func BenchmarkResidualBlockForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	blk := models.NewResidualBlock(rng, rand.New(rand.NewSource(4)),
		models.PaperBlockConfig(196))
	x := tensor.RandNormal(rng, 0, 1, 64, 1, 196)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Forward(x, true)
	}
}

// BenchmarkGRUForward measures the GRU layer alone (batch 64, 196 units).
func BenchmarkGRUForward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	gru := nn.NewGRU(rng, 196, 196, true)
	x := tensor.RandNormal(rng, 0, 1, 64, 1, 196)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gru.Forward(x, true)
	}
}

// BenchmarkConv1DForward measures the conv layer alone (kernel 10,
// batch 64, 196→196 channels).
func BenchmarkConv1DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	conv := nn.NewConv1D(rng, 196, 196, 10, nn.PaddingSame)
	x := tensor.RandNormal(rng, 0, 1, 64, 1, 196)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

// BenchmarkSyntheticGeneration measures dataset generation throughput.
func BenchmarkSyntheticGeneration(b *testing.B) {
	gen := synth.MustNew(synth.UNSWNB15Config())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(1000, int64(i))
	}
}
