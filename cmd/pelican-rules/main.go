// Command pelican-rules mines, lists and evaluates Snort-style signature
// rules against the synthetic datasets (the §VI signature-generation
// baseline as a standalone workflow).
//
// Usage:
//
//	pelican-rules -dataset nsl-kdd -mine -out rules.txt
//	pelican-rules -dataset nsl-kdd -rules rules.txt -eval
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/signature"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-rules:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-rules", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "nsl-kdd", "dataset: unsw-nb15 or nsl-kdd")
		records  = fs.Int("records", 4000, "records to mine/evaluate on")
		seed     = fs.Int64("seed", 1, "random seed")
		mine     = fs.Bool("mine", false, "mine rules from generated traffic")
		perClass = fs.Int("per-class", 3, "conditions per mined rule")
		outPath  = fs.String("out", "", "write mined rules to this path")
		rulePath = fs.String("rules", "", "load rules from this path instead of mining")
		eval     = fs.Bool("eval", true, "evaluate the rules on held-out traffic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg synth.Config
	switch *dataset {
	case "unsw-nb15":
		cfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		cfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}
	schema := gen.Schema()

	var rules []signature.Rule
	switch {
	case *rulePath != "":
		f, err := os.Open(*rulePath)
		if err != nil {
			return err
		}
		defer f.Close()
		rules, err = signature.ParseRules(f, schema)
		if err != nil {
			return fmt.Errorf("parse %s: %w", *rulePath, err)
		}
		fmt.Fprintf(out, "loaded %d rules from %s\n", len(rules), *rulePath)
	case *mine:
		train := gen.Generate(*records, *seed)
		rules, err = signature.MineRules(train, *perClass)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "mined %d rules from %d records:\n", len(rules), *records)
		for _, r := range rules {
			fmt.Fprintln(out, "  "+signature.FormatRule(r, schema))
		}
	default:
		return fmt.Errorf("nothing to do: pass -mine or -rules <path>")
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, r := range rules {
			if _, err := fmt.Fprintln(f, signature.FormatRule(r, schema)); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "wrote %d rules to %s\n", len(rules), *outPath)
	}

	if *eval {
		eng, err := signature.NewEngine(schema, rules)
		if err != nil {
			return err
		}
		test := gen.Generate(*records/2, *seed+1)
		conf := metrics.NewConfusion(2)
		perRule := make(map[int]int)
		for i := range test.Records {
			r := &test.Records[i]
			actual := 0
			if r.Label != 0 {
				actual = 1
			}
			pred := 0
			if rule, ok := eng.Match(r); ok {
				pred = 1
				perRule[rule.ID]++
			}
			conf.Add(actual, pred)
		}
		s := metrics.Summarize("signatures", conf, 0)
		fmt.Fprintf(out, "held-out evaluation: DR=%.2f%% ACC=%.2f%% FAR=%.2f%%\n", s.DR, s.ACC, s.FAR)
		fmt.Fprintln(out, "matches per rule:")
		for _, r := range rules {
			fmt.Fprintf(out, "  rule %d (%s): %d\n", r.ID, r.Msg, perRule[r.ID])
		}
	}
	return nil
}
