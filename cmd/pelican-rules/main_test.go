package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestMineAndEvaluate(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "nsl-kdd", "-records", "1500", "-mine"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"mined", "alert", "held-out evaluation", "matches per rule"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestMineWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nsl-kdd", "-records", "1500", "-mine", "-out", path, "-eval=false"}, &out); err != nil {
		t.Fatalf("mine: %v", err)
	}
	out.Reset()
	if err := run([]string{"-dataset", "nsl-kdd", "-records", "1000", "-rules", path}, &out); err != nil {
		t.Fatalf("load+eval: %v", err)
	}
	if !strings.Contains(out.String(), "loaded") {
		t.Fatalf("missing load confirmation:\n%s", out.String())
	}
}

func TestRequiresMineOrRules(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nsl-kdd"}, &out); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "darpa98", "-mine"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
