package main

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

func TestServeRequiresModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Fatalf("missing -model not rejected: %v", err)
	}
}

func TestServeRejectsMissingArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "/nonexistent/model.plcn"}, &out); err == nil {
		t.Fatal("nonexistent artifact accepted")
	}
}

func TestLoadgenRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loadgen", "-dataset", "cicids"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadgenRejectsUnreachableTarget(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-loadgen", "-target", "http://127.0.0.1:1", "-duration", "100ms"}, &out)
	if err == nil {
		t.Fatal("unreachable target accepted")
	}
}

// TestLoadgenAgainstLiveServer drives the loadgen client against an
// in-process scoring server and checks the report shape: non-zero
// throughput, latency percentiles, and the -min-attacks assertion.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(600, 1)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(1))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(2)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	net.Fit(x.Reshape(x.Dim(0), 1, x.Dim(1)), y, nn.FitConfig{Epochs: 3, BatchSize: 128, Shuffle: true, RNG: rng})
	a, err := serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(a, serve.Config{Replicas: 2, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	var out bytes.Buffer
	err = run([]string{
		"-loadgen", "-target", ts.URL, "-dataset", "nsl-kdd",
		"-duration", "500ms", "-concurrency", "4", "-batch", "8",
		"-records", "128", "-min-attacks", "1",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"throughput:", "records/s", "latency: p50=", "attacks="} {
		if !strings.Contains(s, want) {
			t.Fatalf("loadgen report missing %q:\n%s", want, s)
		}
	}
}
