// Command pelican-serve hosts trained model artifacts as an HTTP/JSON
// scoring service built around a model registry: named slots (live,
// shadow, canary tags) each with their own batcher and replica shard,
// shadow-mode traffic mirroring with agreement counters, atomic
// shadow→live promotion, and rollback — plus dynamic micro-batching,
// Prometheus metrics, and the /v1 single-model surface as thin delegates
// onto the live slot. With -loadgen it instead drives such a service and
// reports achieved QPS and latency percentiles.
//
// Usage:
//
//	pelican-serve -model model.plcn -addr 127.0.0.1:8080 -replicas 2 -engine f32
//	pelican-serve -model live.plcn -shadow candidate.plcn   # mirror + canary
//	pelican-serve -loadgen -target http://127.0.0.1:8080 -duration 5s -concurrency 8 -batch 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-serve", flag.ContinueOnError)
	var (
		model      = fs.String("model", "", "model artifact to serve live (written by pelican-train -save); omit with -state-dir to recover the journaled topology")
		stateDir   = fs.String("state-dir", "", "durable state directory (content-addressed artifact store + registry journal); every lifecycle op is journaled, and a restart without -model recovers the exact pre-crash topology")
		shadow     = fs.String("shadow", "", "optional artifact to preload into the shadow slot (mirrored, promotable via /v2/promote)")
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		wireAddr   = fs.String("wire-addr", "", "also serve the binary wire transport on this address (e.g. 127.0.0.1:9090; empty disables)")
		replicas   = fs.Int("replicas", 2, "detector replicas (scoring shards) per model slot")
		maxBatch   = fs.Int("max-batch", 32, "dynamic batcher flush size")
		maxWait    = fs.Duration("max-wait", 2*time.Millisecond, "dynamic batcher flush deadline")
		queue      = fs.Int("queue", 1024, "batcher queue depth per slot (requests block when full)")
		maxBody    = fs.Int64("max-body", 4<<20, "request body size cap in bytes (413 beyond)")
		engine     = fs.String("engine", "f32", "scoring engine: f32 (compiled float32 inference plan) or f64 (training graph)")
		noMirror   = fs.Bool("no-mirror", false, "disable duplicating live traffic onto the shadow slot")
		reqTimeout = fs.Duration("request-timeout", 5*time.Second, "scoring deadline budget; queued records past it are shed with 503 (negative disables)")
		watermark  = fs.Int("admit-watermark", 0, "queue depth beyond which scoring requests fast-fail 429 (0 = queue size, negative disables)")
		chaosDelay = fs.Duration("chaos-score-delay", 0, "TESTING: inject this much extra latency into every replica's scoring batches")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6060; empty disables)")
		logLevel   = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		traceCap   = fs.Int("trace-cap", 512, "completed request traces retained for /debug/traces")
		obsOff     = fs.Bool("obs-off", false, "disable request tracing and stage timing (the observability-overhead A/B switch)")

		loadgen     = fs.Bool("loadgen", false, "run as load generator instead of server")
		target      = fs.String("target", "http://127.0.0.1:8080", "loadgen: server base URL (model check + stage scrape even under -transport=wire)")
		transport   = fs.String("transport", "http", "loadgen: scoring transport to drive: http (/v1/detect-batch JSON) or wire (binary frames)")
		wireTarget  = fs.String("wire-target", "127.0.0.1:9090", "loadgen: wire server address for -transport=wire")
		duration    = fs.Duration("duration", 5*time.Second, "loadgen: how long to drive load")
		concurrency = fs.Int("concurrency", 8, "loadgen: concurrent client connections")
		batch       = fs.Int("batch", 8, "loadgen: records per /v1/detect-batch request")
		dataset     = fs.String("dataset", "nsl-kdd", "loadgen: dataset shape for generated flows (unsw-nb15 or nsl-kdd)")
		records     = fs.Int("records", 512, "loadgen: distinct records generated and cycled")
		seed        = fs.Int64("seed", 1, "loadgen: record generation seed")
		minAttacks  = fs.Int("min-attacks", 0, "loadgen: fail unless at least this many attack verdicts came back")
		minShed     = fs.Int("min-shed", 0, "loadgen: fail unless at least this many requests were shed (429/503) — overload-test assertion")
		maxP99      = fs.Duration("max-p99", 0, "loadgen: fail if accepted-request p99 latency exceeds this (0 = no bound)")
		jsonOut     = fs.String("json", "", "loadgen: also write the run summary (throughput, latency, stage breakdown) as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *loadgen {
		return runLoadgen(out, loadgenConfig{
			target: *target, transport: *transport, wireTarget: *wireTarget,
			duration: *duration, concurrency: *concurrency,
			batch: *batch, dataset: *dataset, records: *records, seed: *seed,
			minAttacks: *minAttacks, minShed: *minShed, maxP99: *maxP99,
			jsonOut: *jsonOut,
		})
	}
	cfg := serve.Config{
		Replicas: *replicas, MaxBatch: *maxBatch, MaxWait: *maxWait, QueueDepth: *queue,
		MaxBodyBytes: *maxBody, Engine: *engine, MirrorOff: *noMirror,
		RequestTimeout: *reqTimeout, AdmitWatermark: *watermark,
		TraceCap: *traceCap, ObsOff: *obsOff,
		Logger: obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel)),
	}
	if *chaosDelay > 0 {
		inj := &chaos.Injector{}
		inj.SetScoreDelay(*chaosDelay)
		cfg.Chaos = inj
	}
	if *stateDir != "" {
		st, err := store.Open(*stateDir)
		if err != nil {
			return fmt.Errorf("-state-dir: %w", err)
		}
		cfg.Store = st
	}
	if *pprofAddr != "" {
		bound, stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer stop()
		fmt.Fprintf(out, "pprof on http://%s/debug/pprof/\n", bound)
	}
	return runServer(out, *model, *shadow, *addr, *wireAddr, cfg)
}

func runServer(out io.Writer, model, shadow, addr, wireAddr string, cfg serve.Config) error {
	var srv *serve.Server
	switch {
	case model != "":
		// Fresh start: this artifact is the new truth, any journaled
		// topology is discarded.
		a, err := serve.LoadArtifactFile(model)
		if err != nil {
			return err
		}
		if srv, err = serve.New(a, cfg); err != nil {
			return err
		}
	case cfg.Store != nil:
		var err error
		if srv, err = serve.Recover(cfg); err != nil {
			return err
		}
		rep := srv.Recovery()
		fmt.Fprintf(out, "recovered from journal: %d slots restored, %d degraded (%d records replayed, %d truncated) in %s\n",
			len(rep.Restored), len(rep.Degraded), rep.Replayed, rep.Truncated, rep.Duration.Round(time.Millisecond))
		for tag, version := range rep.Restored {
			fmt.Fprintf(out, "  %s: %s\n", tag, version)
		}
		for _, d := range rep.Degraded {
			fmt.Fprintf(out, "  DEGRADED %s (%s): %s\n", d.Tag, d.Version, d.Reason)
		}
		if _, ok := rep.Restored["live"]; !ok {
			fmt.Fprintln(out, "no live slot recovered: /readyz answers 503 until a model is loaded")
		}
	default:
		return fmt.Errorf("-model is required (train one with: pelican-train -save model.plcn), or pass -state-dir to recover a journaled topology")
	}
	if shadow != "" {
		sa, err := serve.LoadArtifactFile(shadow)
		if err != nil {
			return fmt.Errorf("-shadow: %w", err)
		}
		if err := srv.LoadSlot("shadow", sa); err != nil {
			return fmt.Errorf("-shadow: %w", err)
		}
		fmt.Fprintf(out, "shadow slot: %s (version %s)\n", sa.ModelName, sa.Version())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if info := srv.Info(); info.Version != "" {
		fmt.Fprintf(out, "serving %s (version %s, %d features, %d classes) on http://%s\n",
			info.Model, info.Version, info.Features, info.Classes, ln.Addr())
	} else {
		fmt.Fprintf(out, "serving (no live model) on http://%s\n", ln.Addr())
	}
	info := srv.Info()
	fmt.Fprintf(out, "engine=%s replicas=%d max-batch=%d max-wait=%s\n", info.Engine, info.Replicas, info.MaxBatch, cfg.MaxWait)
	fmt.Fprintf(out, "registry: /v2/models (list), /v2/load?tag= (stage), /v2/promote, /v2/rollback\n")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	if wireAddr != "" {
		wln, err := net.Listen("tcp", wireAddr)
		if err != nil {
			ln.Close()
			srv.Close()
			return fmt.Errorf("-wire-addr: %w", err)
		}
		fmt.Fprintf(out, "wire transport on %s\n", wln.Addr())
		go func() {
			if werr := srv.ServeWire(ctx, wln); werr != nil {
				fmt.Fprintf(out, "wire listener error: %v\n", werr)
			}
		}()
	}

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: reject new scoring requests on both planes, let
	// in-flight HTTP handlers finish, answer every in-flight wire frame
	// (GoAway, then wait for clients to collect and hang up), then drain
	// the batchers and workers.
	fmt.Fprintln(out, "shutting down: draining in-flight requests...")
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.ShutdownWire(shCtx); err != nil {
		return fmt.Errorf("wire shutdown: %w", err)
	}
	srv.Close()
	fmt.Fprintln(out, "shutdown complete")
	return nil
}

type loadgenConfig struct {
	target      string
	transport   string // "http" or "wire"
	wireTarget  string
	duration    time.Duration
	concurrency int
	batch       int
	dataset     string
	records     int
	seed        int64
	minAttacks  int
	minShed     int
	maxP99      time.Duration
	jsonOut     string
}

// stageSummary is one stage's slice of the run, from the server's own
// stage histograms (scraped before and after, delta'd).
type stageSummary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P95US  float64 `json:"p95_us"`
}

// loadgenSummary is the -json run report.
type loadgenSummary struct {
	Target     string                  `json:"target"`
	Transport  string                  `json:"transport"`
	DurationS  float64                 `json:"duration_s"`
	Requests   int                     `json:"requests"`
	Records    int                     `json:"records"`
	Shed       int                     `json:"shed"`
	Errors     int                     `json:"errors"`
	Attacks    int                     `json:"attacks"`
	RecordsPS  float64                 `json:"records_per_sec"`
	RequestsPS float64                 `json:"requests_per_sec"`
	P50US      float64                 `json:"p50_us"`
	P95US      float64                 `json:"p95_us"`
	P99US      float64                 `json:"p99_us"`
	MaxUS      float64                 `json:"max_us"`
	Stages     map[string]stageSummary `json:"stages,omitempty"`
	// Wire-transport client-side frame accounting (absent for HTTP runs):
	// bytes as framed on the socket, headers included.
	WireBytesOut int64 `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64 `json:"wire_bytes_in,omitempty"`
}

// stageFamilies maps the printed stage names to their /metrics histogram
// families, in display order.
var stageFamilies = []struct{ stage, family string }{
	{"queue_wait", "pelican_serve_queue_wait_seconds"},
	{"batch_assembly", "pelican_serve_batch_assembly_seconds"},
	{"infer", "pelican_serve_infer_seconds"},
	{"encode", "pelican_serve_encode_seconds"},
}

// scrapeStages fetches the target's live-slot stage histograms. A missing
// /metrics or missing stage families (server running -obs-off) returns
// nil — the stage breakdown is then simply omitted.
func scrapeStages(target string) map[string]*obs.PromHist {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return nil
	}
	match := map[string]string{"slot": "live"}
	out := make(map[string]*obs.PromHist)
	for _, sf := range stageFamilies {
		if h := fams[sf.family].Histogram(match); h != nil {
			out[sf.stage] = h
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

type workerResult struct {
	requests  int
	records   int
	attacks   int
	shed      int // requests the server refused under overload (429/503)
	errors    int
	latencies []time.Duration
}

func runLoadgen(out io.Writer, cfg loadgenConfig) error {
	if cfg.batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}
	var synthCfg synth.Config
	switch cfg.dataset {
	case "unsw-nb15":
		synthCfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		synthCfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", cfg.dataset)
	}
	gen, err := synth.New(synthCfg)
	if err != nil {
		return err
	}

	// Sanity-check the target model against the dataset shape before
	// hammering it.
	var info serve.ModelInfo
	resp, err := http.Get(cfg.target + "/v1/model")
	if err != nil {
		return fmt.Errorf("query %s/v1/model: %w", cfg.target, err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		resp.Body.Close()
		return fmt.Errorf("decode /v1/model: %w", err)
	}
	resp.Body.Close()
	if want := gen.Schema().EncodedWidth(); info.Features != want {
		return fmt.Errorf("server model %s expects %d features, dataset %s encodes %d — use the matching -dataset",
			info.Model, info.Features, cfg.dataset, want)
	}
	fmt.Fprintf(out, "target %s: model %s version %s\n", cfg.target, info.Model, info.Version)

	// Pre-generate the records (and, for HTTP, pre-marshal the request
	// bodies) so the hot loop measures the server, not the client encoder.
	ds := gen.Generate(cfg.records, cfg.seed)
	type prebuilt struct {
		body []byte
		recs []*data.Record
		n    int
	}
	bodies := make([]prebuilt, 0, (len(ds.Records)+cfg.batch-1)/cfg.batch)
	for lo := 0; lo < len(ds.Records); lo += cfg.batch {
		hi := lo + cfg.batch
		if hi > len(ds.Records) {
			hi = len(ds.Records)
		}
		pb := prebuilt{n: hi - lo}
		if cfg.transport == "wire" {
			for j := lo; j < hi; j++ {
				pb.recs = append(pb.recs, &ds.Records[j])
			}
		} else {
			var req struct {
				Records []serve.RecordJSON `json:"records"`
			}
			for _, r := range ds.Records[lo:hi] {
				req.Records = append(req.Records, serve.RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical})
			}
			b, err := json.Marshal(req)
			if err != nil {
				return err
			}
			pb.body = b
		}
		bodies = append(bodies, pb)
	}

	// Wire transport: one multiplexed client shared by every worker, no
	// HTTP fallback — a transport benchmark must not silently change
	// transports.
	var wc *wire.Client
	if cfg.transport == "wire" {
		wc = wire.NewClient(cfg.wireTarget)
		wc.Conns = cfg.concurrency
		if wc.Conns > 8 {
			wc.Conns = 8
		}
		if err := wc.Connect(); err != nil {
			return fmt.Errorf("connect wire %s: %w", cfg.wireTarget, err)
		}
		defer wc.Close()
		fmt.Fprintf(out, "wire target %s: model version %s (%d connections)\n", cfg.wireTarget, wc.ModelVersion(), wc.Conns)
	} else if cfg.transport != "http" {
		return fmt.Errorf("unknown -transport %q (http or wire)", cfg.transport)
	}

	fmt.Fprintf(out, "driving %d clients x %d-record batches for %s over %s...\n", cfg.concurrency, cfg.batch, cfg.duration, cfg.transport)
	stagesBefore := scrapeStages(cfg.target)
	deadline := time.Now().Add(cfg.duration)
	results := make([]workerResult, cfg.concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			res := &results[w]
			for i := w; time.Now().Before(deadline); i++ {
				b := bodies[i%len(bodies)]
				if wc != nil {
					start := time.Now()
					verdicts, _, err := wc.Score(b.recs)
					if err != nil {
						if _, ok := wire.ShedStatus(err); ok || wc.Draining() {
							// 429/503 answers and drain-time unavailability are
							// the server shedding, same as the HTTP branch.
							res.shed++
						} else {
							res.errors++
						}
						continue
					}
					res.latencies = append(res.latencies, time.Since(start))
					res.requests++
					res.records += len(verdicts)
					for _, v := range verdicts {
						if v.IsAttack {
							res.attacks++
						}
					}
					continue
				}
				start := time.Now()
				resp, err := client.Post(cfg.target+"/v1/detect-batch", "application/json", bytes.NewReader(b.body))
				if err != nil {
					res.errors++
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					// Overload shedding is the server doing its job, not an
					// error: count it separately so an overload test can
					// assert sheds happened while accepted latency stayed
					// bounded.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					res.shed++
					continue
				}
				var br struct {
					Verdicts []serve.VerdictJSON `json:"verdicts"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK || len(br.Verdicts) != b.n {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, time.Since(start))
				res.requests++
				res.records += len(br.Verdicts)
				for _, v := range br.Verdicts {
					if v.IsAttack {
						res.attacks++
					}
				}
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > cfg.duration {
		elapsed = cfg.duration // straggler requests don't inflate the window
	}

	var total workerResult
	for _, r := range results {
		total.requests += r.requests
		total.records += r.records
		total.attacks += r.attacks
		total.shed += r.shed
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	if total.requests == 0 {
		return fmt.Errorf("no successful requests (%d shed, %d errors)", total.shed, total.errors)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(total.latencies)-1))
		return total.latencies[i]
	}
	fmt.Fprintf(out, "requests=%d records=%d shed=%d errors=%d attacks=%d\n",
		total.requests, total.records, total.shed, total.errors, total.attacks)
	fmt.Fprintf(out, "throughput: %.0f records/s (%.0f req/s)\n",
		float64(total.records)/elapsed.Seconds(), float64(total.requests)/elapsed.Seconds())
	fmt.Fprintf(out, "latency: p50=%s p95=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), total.latencies[len(total.latencies)-1].Round(time.Microsecond))

	// Per-stage breakdown, from the server's own stage histograms: the
	// delta between the pre- and post-run scrapes is this run's share, so
	// earlier traffic against the same server never pollutes it. Absent
	// when the server runs -obs-off.
	stages := make(map[string]stageSummary)
	if after := scrapeStages(cfg.target); after != nil {
		fmt.Fprintf(out, "stage breakdown (live slot, server-side):\n")
		fmt.Fprintf(out, "  %-16s %10s %12s %12s\n", "stage", "count", "mean", "p95")
		for _, sf := range stageFamilies {
			h := after[sf.stage].Sub(stagesBefore[sf.stage])
			if h == nil || h.Count == 0 {
				continue
			}
			mean := time.Duration(h.Mean() * float64(time.Second))
			p95 := time.Duration(h.Quantile(0.95) * float64(time.Second))
			fmt.Fprintf(out, "  %-16s %10d %12s %12s\n", sf.stage, h.Count,
				mean.Round(time.Microsecond), p95.Round(time.Microsecond))
			stages[sf.stage] = stageSummary{
				Count:  h.Count,
				MeanUS: h.Mean() * 1e6,
				P95US:  h.Quantile(0.95) * 1e6,
			}
		}
	}

	if wc != nil {
		_, _, bytesOut, bytesIn := wc.Stats()
		fmt.Fprintf(out, "wire bytes: %.1f out + %.1f in per record (framed)\n",
			float64(bytesOut)/float64(total.records), float64(bytesIn)/float64(total.records))
	}

	if cfg.jsonOut != "" {
		summary := loadgenSummary{
			Target: cfg.target, Transport: cfg.transport, DurationS: elapsed.Seconds(),
			Requests: total.requests, Records: total.records,
			Shed: total.shed, Errors: total.errors, Attacks: total.attacks,
			RecordsPS:  float64(total.records) / elapsed.Seconds(),
			RequestsPS: float64(total.requests) / elapsed.Seconds(),
			P50US:      float64(pct(0.50).Microseconds()),
			P95US:      float64(pct(0.95).Microseconds()),
			P99US:      float64(pct(0.99).Microseconds()),
			MaxUS:      float64(total.latencies[len(total.latencies)-1].Microseconds()),
		}
		if len(stages) > 0 {
			summary.Stages = stages
		}
		if wc != nil {
			_, _, summary.WireBytesOut, summary.WireBytesIn = wc.Stats()
		}
		b, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonOut, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Fprintf(out, "summary written to %s\n", cfg.jsonOut)
	}

	if total.attacks < cfg.minAttacks {
		return fmt.Errorf("only %d attack verdicts, -min-attacks requires %d", total.attacks, cfg.minAttacks)
	}
	if total.shed < cfg.minShed {
		return fmt.Errorf("only %d requests shed, -min-shed requires %d (server is not shedding under this load)", total.shed, cfg.minShed)
	}
	if cfg.maxP99 > 0 {
		if p99 := pct(0.99); p99 > cfg.maxP99 {
			return fmt.Errorf("accepted-request p99 %s exceeds -max-p99 %s (shedding is not bounding latency)", p99.Round(time.Millisecond), cfg.maxP99)
		}
	}
	return nil
}
