// Command pelican-adapt is the adaptation sidecar that closes the loop
// around a running pelican-serve: it scores labeled evaluation traffic
// against the server (so it watches exactly the model generation
// production flows are scored by), monitors the score/alert/feature
// distributions for drift, and on a trip warm-start retrains the current
// model on the older part of a sliding buffer of recent flows, saves a new
// content-addressed artifact, and stages it into the server's shadow slot
// via /v2/load. Promotion is gated: the candidate must score a held-out
// detection rate no worse than the deployed model's (on the buffer's most
// recent flows, which retraining never sees) or it is rejected — it stays
// parked in shadow for inspection and the live model is untouched, with
// /v2/rollback one call away even after a promotion. -gate-off restores
// the old unconditional publish.
//
// The traffic is simulated (the repository's class-conditional generators
// stand in for a span port); -shift-at injects a distribution shift —
// every attack class mutates into a new variant — mid-stream to
// demonstrate and test the loop end to end:
//
//	pelican-adapt -model model.plcn -target http://127.0.0.1:8080 \
//	    -artifact-dir /tmp/artifacts -flows 12000 -shift-at 4000 -require-retrain
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/flow"
	"repro/internal/nids"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-adapt:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-adapt", flag.ContinueOnError)
	var (
		model       = fs.String("model", "", "deployed model artifact (the warm-start base; must match what -target serves)")
		target      = fs.String("target", "http://127.0.0.1:8080", "scoring server base URL")
		artifactDir = fs.String("artifact-dir", "", "where retrained artifacts are written (default: a temp dir)")
		dataset     = fs.String("dataset", "nsl-kdd", "traffic shape: unsw-nb15 or nsl-kdd (must match the served model)")
		flows       = fs.Int("flows", 12000, "evaluation flows to stream")
		shiftAt     = fs.Int("shift-at", 0, "inject an attack-variant distribution shift after this many flows (0 = never)")
		variantSeed = fs.Int64("variant-seed", 202, "profile-seed delta for the injected attack variants")
		seed        = fs.Int64("seed", 1, "traffic seed")
		attackRate  = fs.Float64("attack-rate", 0.15, "background attack fraction of the simulated stream")
		workers     = fs.Int("workers", 2, "pipeline scoring workers")
		refWindow   = fs.Int("ref-window", 1024, "drift monitor reference window (flows)")
		window      = fs.Int("window", 512, "drift monitor sliding window (flows)")
		threshold   = fs.Float64("threshold", adapt.DefaultThreshold, "drift trip threshold (|z|)")
		buffer      = fs.Int("buffer", 2048, "sliding retraining buffer (flows)")
		minRetrain  = fs.Int("min-retrain", 256, "fewest buffered flows worth retraining on")
		epochs      = fs.Int("epochs", 3, "warm-start retraining epochs per trip")
		lr          = fs.Float64("lr", 0.003, "warm-start learning rate")
		holdout     = fs.Float64("holdout", 0.2, "fraction of the buffer held out to gate promotion (candidate DR must be no worse than live)")
		gateOff     = fs.Bool("gate-off", false, "publish every retrain unconditionally (disable the held-out promotion gate)")
		reportEvery = fs.Int("report-every", 2000, "print realized stats every N flows (0 = off)")
		healthEvery = fs.Duration("healthz-every", 0, "poll -target/healthz at this interval and fail on any non-200 (0 = off)")
		stateDir    = fs.String("state-dir", "", "directory for adaptation checkpoints (drift windows + flow buffer); a restarted sidecar resumes its drift window instead of re-warming")
		ckptEvery   = fs.Duration("checkpoint-every", 5*time.Second, "periodic checkpoint interval when -state-dir is set (0 = only at exit)")
		mustRetrain = fs.Bool("require-retrain", false, "exit non-zero unless at least one retrain was published")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6061; empty disables)")
		logLevel    = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required (the artifact the server is serving)")
	}
	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	if *pprofAddr != "" {
		bound, stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer stop()
		fmt.Fprintf(out, "pprof on http://%s/debug/pprof/\n", bound)
	}

	var cfg synth.Config
	switch *dataset {
	case "unsw-nb15":
		cfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		cfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}

	art, err := serve.LoadArtifactFile(*model)
	if err != nil {
		return err
	}
	if got, want := art.Features(), gen.Schema().EncodedWidth(); got != want {
		return fmt.Errorf("artifact encodes %d features, dataset %s encodes %d — use the matching -dataset", got, *dataset, want)
	}
	client := serve.NewClient(*target)
	info, err := client.Model()
	if err != nil {
		return fmt.Errorf("query %s/v1/model: %w", *target, err)
	}
	if info.Version != art.Version() {
		fmt.Fprintf(out, "warning: server serves version %s, -model is %s; retraining warm-starts from -model\n",
			info.Version, art.Version())
	}

	if *artifactDir == "" {
		dir, err := os.MkdirTemp("", "pelican-adapt")
		if err != nil {
			return err
		}
		*artifactDir = dir
	}

	var rejected atomic.Int64
	loop, err := adapt.NewLoop(art, adapt.Config{
		Monitor:       adapt.MonitorConfig{RefWindow: *refWindow, Window: *window, Threshold: *threshold},
		BufferCap:     *buffer,
		MinRetrain:    *minRetrain,
		RetrainEpochs: *epochs,
		LR:            *lr,
		HoldoutFrac:   *holdout,
		GateOff:       *gateOff,
		ArtifactDir:   *artifactDir,
		Publisher:     adapt.HTTPPublisher{Client: client},
		Logger:        logger.With("component", "adapt"),
		// Stamp each drift trip with the server-echoed request ID of the
		// scoring call whose verdict closed the window: the retrain's
		// structured records then join to the server's /debug/traces entry
		// for that request.
		TraceIDFn: client.LastRequestID,
		OnEvent: func(e adapt.Event) {
			if e.Rejected {
				rejected.Add(1)
			}
			fmt.Fprintln(out, e)
		},
		Seed: *seed,
	})
	if err != nil {
		return err
	}

	// Durable adaptation state: restore the dead process's drift windows
	// and flow buffer before the first observation, so the monitors are
	// watching from flow one instead of re-warming (a gap during which
	// real drift would pass unnoticed). A corrupt or cross-generation
	// checkpoint is discarded — fresh windows beat poisoned ones.
	var ckptPath string
	saveCheckpoint := func() {
		if ckptPath == "" {
			return
		}
		if err := loop.SaveCheckpoint(ckptPath); err != nil {
			fmt.Fprintf(out, "checkpoint save failed: %v\n", err)
		}
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return fmt.Errorf("-state-dir: %w", err)
		}
		ckptPath = filepath.Join(*stateDir, "adapt.ckpt")
		switch err := loop.RestoreCheckpoint(ckptPath); {
		case err == nil:
			sig, z := loop.Stat()
			fmt.Fprintf(out, "resumed adaptation state from %s (%d buffered flows, %d seen, drift %s z=%.1f)\n",
				ckptPath, loop.Buffer().Len(), loop.Buffer().Seen(), sig, z)
		case errors.Is(err, os.ErrNotExist):
			// First boot: nothing to resume.
		default:
			fmt.Fprintf(out, "checkpoint discarded (%v); starting with fresh drift windows\n", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		loop.Run(ctx)
	}()
	if ckptPath != "" && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					saveCheckpoint()
				}
			}
		}()
	}

	// Optional health watchdog: the whole point of hot-reload is that the
	// swap is invisible to /healthz. Every poll runs under its own
	// timeout — a bare http.Get here would let one stalled poll park the
	// watchdog goroutine forever, silently disabling the very check this
	// flag asks for — and a timed-out poll counts as a failure: a health
	// endpoint that cannot answer inside the poll interval is not healthy.
	var healthFails atomic.Int64
	if *healthEvery > 0 {
		pollTimeout := *healthEvery
		if pollTimeout < 250*time.Millisecond {
			pollTimeout = 250 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(*healthEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					pollCtx, cancel := context.WithTimeout(ctx, pollTimeout)
					req, err := http.NewRequestWithContext(pollCtx, http.MethodGet, *target+"/healthz", nil)
					var resp *http.Response
					if err == nil {
						resp, err = http.DefaultClient.Do(req)
					}
					if err != nil || resp.StatusCode != http.StatusOK {
						healthFails.Add(1)
					}
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
				}
			}
		}()
	}

	det := &serve.RemoteDetector{Client: client}
	pipe := nids.New(det, nids.Config{Workers: *workers, MicroBatch: 8, Tap: loop.Observe})

	src, err := flow.NewSource(gen, flow.SourceConfig{
		AttackRate:        *attackRate,
		EpisodeEvery:      200,
		EpisodeLen:        40,
		EpisodeAttackRate: 0.8,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}

	// Build the injected shift up front so a bad -variant-seed fails fast
	// instead of silently leaving the stream stationary.
	var variant *synth.Generator
	if *shiftAt > 0 {
		k := gen.Schema().NumClasses()
		attacks := make([]int, 0, k-1)
		for c := 1; c < k; c++ {
			attacks = append(attacks, c)
		}
		variant, err = synth.NewVariant(cfg, cfg.ProfileSeed+*variantSeed, attacks)
		if err != nil {
			return fmt.Errorf("build attack variants: %w", err)
		}
	}

	fmt.Fprintf(out, "adapting %s (version %s) at %s: %d flows, shift at %d\n",
		art.ModelName, art.Version(), *target, *flows, *shiftAt)
	// SIGTERM/SIGINT stop the stream gracefully: the pipeline drains, the
	// loop exits, and a final checkpoint lands — so an orchestrated restart
	// (rolling update, node drain) resumes its drift window.
	sigCtx, sigStop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer sigStop()
	flowCh := make(chan flow.Flow, 32)
	var prev nids.StatsSnapshot
	go func() {
		defer close(flowCh)
		for i := 0; i < *flows; i++ {
			if variant != nil && i == *shiftAt {
				if err := src.SetGenerator(variant); err != nil {
					fmt.Fprintf(out, "flow %d: shift injection failed: %v\n", i, err)
				} else {
					fmt.Fprintf(out, "flow %d: injected attack-variant shift (profile seed +%d)\n", i, *variantSeed)
				}
			}
			if *reportEvery > 0 && i > 0 && i%*reportEvery == 0 {
				st := pipe.Stats()
				sig, z := loop.Stat()
				fmt.Fprintf(out, "flow %d: window DR=%.1f%% FAR=%.1f%% | drift %s z=%.1f | retrains=%d\n",
					i, windowRate(st.TruePos-prev.TruePos, st.Missed-prev.Missed)*100,
					windowRate(st.FalseAlarms-prev.FalseAlarms, st.TrueNeg-prev.TrueNeg)*100,
					sig, z, loop.Retrains())
				prev = st
			}
			select {
			case flowCh <- src.Next():
			case <-sigCtx.Done():
				return
			}
		}
	}()
	runErr := pipe.Run(sigCtx, flowCh, nil)
	interrupted := sigCtx.Err() != nil
	cancel()
	<-loopDone
	saveCheckpoint()
	if interrupted {
		fmt.Fprintf(out, "interrupted: adaptation state checkpointed (%d flows buffered)\n", loop.Buffer().Len())
		return nil
	}
	if runErr != nil {
		return runErr
	}

	st := pipe.Stats()
	final, err := client.Model()
	if err != nil {
		return fmt.Errorf("query final /v1/model: %w", err)
	}
	fmt.Fprintf(out, "done: %s\n", st)
	fmt.Fprintf(out, "retrains=%d gate-rejections=%d served-version=%s scoring-errors=%d\n",
		loop.Retrains(), rejected.Load(), final.Version, det.Errors())
	if det.Errors() > 0 {
		return fmt.Errorf("%d scoring requests failed", det.Errors())
	}
	if fails := healthFails.Load(); fails > 0 {
		return fmt.Errorf("/healthz failed %d times during the run", fails)
	}
	if *mustRetrain && loop.Retrains() == 0 {
		sig, z := loop.Stat()
		return fmt.Errorf("no retrain was published (-require-retrain; strongest drift signal %s z=%.1f)", sig, z)
	}
	return nil
}

// windowRate is a safe ratio for per-report-window counter deltas.
func windowRate(hit, miss int64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}
