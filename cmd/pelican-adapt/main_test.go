package main

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

func TestAdaptRequiresModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Fatalf("missing -model not rejected: %v", err)
	}
}

func TestAdaptRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "x.plcn", "-dataset", "cicids"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestAdaptRejectsUnreachableTarget(t *testing.T) {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := trainArtifactFile(t, gen, 300, 1)
	var out bytes.Buffer
	if err := run([]string{"-model", path, "-target", "http://127.0.0.1:1"}, &out); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

// trainArtifactFile trains a small MLP on the generator and writes its
// artifact under t.TempDir.
func trainArtifactFile(t *testing.T, gen *synth.Generator, records, epochs int) string {
	t.Helper()
	ds := gen.Generate(records, 1)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(1))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(2)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{
		Epochs: epochs, BatchSize: 128, Shuffle: true, RNG: rng,
	})
	a, err := serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.plcn")
	if err := serve.SaveArtifactFile(path, a); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAdaptSidecarEndToEnd runs the sidecar against an in-process scoring
// server: injected drift must trigger a published retrain (and the health
// watchdog must never see the server falter through the hot swap).
func TestAdaptSidecarEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and streams thousands of flows")
	}
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := trainArtifactFile(t, gen, 1200, 5)
	a, err := serve.LoadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(a, serve.Config{Replicas: 2, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	var out bytes.Buffer
	err = run([]string{
		"-model", path,
		"-target", ts.URL,
		"-artifact-dir", t.TempDir(),
		"-flows", "9000",
		"-shift-at", "3000",
		"-report-every", "3000",
		"-healthz-every", "50ms",
		"-require-retrain",
	}, &out)
	t.Logf("sidecar output:\n%s", out.String())
	if err != nil {
		t.Fatalf("sidecar failed: %v", err)
	}
	if !strings.Contains(out.String(), "-> published") {
		t.Fatal("no published retrain in sidecar output")
	}
	if srv.Artifact().Version() == a.Version() {
		t.Fatal("server still serves the original generation")
	}
}
