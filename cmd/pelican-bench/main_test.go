package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "TABLE I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "smoke profile") {
		t.Fatalf("missing profile footer:\n%s", out.String())
	}
}

func TestRunTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "table3", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"TABLE III", "Plain-21", "Residual-41 (Pelican)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunFig5aSmokeIncludesChart(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5a", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig. 5") || !strings.Contains(s, "epochs →") {
		t.Fatalf("missing chart:\n%s", s)
	}
}

func TestRunInferBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives both engines")
	}
	path := filepath.Join(t.TempDir(), "BENCH_infer.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "infer", "-profile", "smoke", "-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"INFERENCE ENGINE A/B", "f64", "f32 speedup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("JSON not written: %v", err)
	}
	var res struct {
		Rows []struct {
			Engine        string  `json:"engine"`
			RecordsPerSec float64 `json:"records_per_sec"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	if len(res.Rows) != 2 || res.Rows[0].RecordsPerSec <= 0 || res.Rows[1].RecordsPerSec <= 0 {
		t.Fatalf("bad rows in %s: %s", path, b)
	}
}

func TestRunInferBenchRejectsUnknownEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "infer", "-profile", "smoke", "-engine", "f16"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-profile", "huge"}, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestOverridesApplied(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "table1", "-profile", "smoke", "-records", "123", "-epochs", "7"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "123") {
		t.Fatalf("records override not reflected:\n%s", s)
	}
	if !strings.Contains(s, "7") {
		t.Fatalf("epochs override not reflected:\n%s", s)
	}
}
