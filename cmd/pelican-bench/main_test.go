package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "TABLE I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "smoke profile") {
		t.Fatalf("missing profile footer:\n%s", out.String())
	}
}

func TestRunTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "table3", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"TABLE III", "Plain-21", "Residual-41 (Pelican)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunFig5aSmokeIncludesChart(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5a", "-profile", "smoke"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig. 5") || !strings.Contains(s, "epochs →") {
		t.Fatalf("missing chart:\n%s", s)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-profile", "huge"}, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestOverridesApplied(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "table1", "-profile", "smoke", "-records", "123", "-epochs", "7"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "123") {
		t.Fatalf("records override not reflected:\n%s", s)
	}
	if !strings.Contains(s, "7") {
		t.Fatalf("epochs override not reflected:\n%s", s)
	}
}
