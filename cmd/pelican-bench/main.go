// Command pelican-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pelican-bench -exp table5 -profile default
//	pelican-bench -exp fig5a -profile smoke -v
//	pelican-bench -exp infer -json BENCH_infer.json
//	pelican-bench -exp all
//
// Experiments: table1, table2, table3, table4, table5, fig2, fig5a, fig5b,
// fig5c, fig5d, infer (the f64-vs-f32 serving engine A/B), all. Profiles:
// paper, default, smoke (see DESIGN.md §5).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-bench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment id: table1..table5, table5x, fig2, fig5a..fig5d, ext-*, infer, transport, all")
		profile    = fs.String("profile", "default", "workload profile: paper, default, smoke")
		records    = fs.Int("records", 0, "override records per dataset (0 = profile default)")
		epochs     = fs.Int("epochs", 0, "override training epochs (0 = profile default)")
		seed       = fs.Int64("seed", 0, "override random seed (0 = profile default)")
		verbose    = fs.Bool("v", false, "log per-epoch training progress to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		engine     = fs.String("engine", "both", "infer A/B (-exp infer, or its -exp all tail): which engines to drive (f32, f64 or both)")
		benchJSON  = fs.String("json", "", "infer/transport A/B: also write the result to this JSON file (e.g. BENCH_infer.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *engine {
	case "f32", "f64", "both":
	default:
		// Diagnosed up front: the infer A/B may only run at the tail of
		// -exp all, and a typo'd engine should not surface hours in.
		return fmt.Errorf("unknown -engine %q (want f32, f64 or both)", *engine)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("create mem profile: %w", err)
		}
		defer func() {
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pelican-bench: write mem profile:", err)
			}
			f.Close()
		}()
	}
	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		return err
	}
	if *records > 0 {
		p.Records = *records
	}
	if *epochs > 0 {
		p.EpochsUNSW = *epochs
		p.EpochsNSL = *epochs
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}

	start := time.Now()
	if err := dispatch(*exp, p, *engine, *benchJSON, out, log); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n[%s profile, %s elapsed]\n", p.Name, time.Since(start).Round(time.Millisecond))
	return nil
}

// runInferBench runs the serving-engine A/B (f64 training graph vs
// compiled f32 plan side by side) and, when jsonPath is set, writes the
// result there so BENCH_*.json tracks the inference trajectory.
func runInferBench(p experiments.Profile, engine, jsonPath string, out, log io.Writer) error {
	res, err := experiments.RunInferBench(p, engine, log)
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.FormatInferBench(res))
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// runTransportBench runs the HTTP/JSON-vs-wire serving transport A/B
// and, when jsonPath is set, writes the result there
// (BENCH_transport.json tracks the transport trajectory).
func runTransportBench(p experiments.Profile, jsonPath string, out, log io.Writer) error {
	res, err := experiments.RunTransportBench(p, log)
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.FormatTransportBench(res))
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// dispatch runs the selected experiment(s), reusing the four-network runs
// across Table II/III/IV and Fig. 5 panels as the paper does. engine and
// benchJSON parameterize the infer A/B (reached via -exp infer or as the
// tail of -exp all).
func dispatch(exp string, p experiments.Profile, engine, benchJSON string, out, log io.Writer) error {
	needsFour := map[string]bool{
		"table2": true, "table3": true, "table4": true,
		"fig5a": true, "fig5b": true, "fig5c": true, "fig5d": true, "all": true,
	}
	var nsl, unsw *experiments.FourNetResult
	var err error
	if needsFour[exp] {
		needNSL := exp == "all" || exp == "table2" || exp == "table3" || exp == "fig5c" || exp == "fig5d"
		needUNSW := exp == "all" || exp == "table2" || exp == "table4" || exp == "fig5a" || exp == "fig5b"
		if needNSL {
			if nsl, err = experiments.RunFourNets(p, experiments.NSL, log); err != nil {
				return err
			}
		}
		if needUNSW {
			if unsw, err = experiments.RunFourNets(p, experiments.UNSW, log); err != nil {
				return err
			}
		}
	}

	switch exp {
	case "table1":
		fmt.Fprint(out, experiments.FormatTable1(p))
	case "table2":
		fmt.Fprint(out, experiments.FormatTable2(nsl, unsw))
	case "table3":
		fmt.Fprint(out, experiments.FormatTable34(nsl))
	case "table4":
		fmt.Fprint(out, experiments.FormatTable34(unsw))
	case "table5x":
		res, err := experiments.RunTable5Extended(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable5Extended(res))
	case "table5":
		res, err := experiments.RunTable5(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable5(res))
	case "fig2":
		res, err := experiments.RunFig2(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatFig2(res))
		fmt.Fprint(out, experiments.ChartFig2(res))
		if onset := experiments.DegradationOnset(res.Points); onset > 0 {
			fmt.Fprintf(out, "degradation begins after %d parameter layers\n", onset)
		}
	case "fig5a":
		fmt.Fprint(out, experiments.FormatFig5(unsw, "train"))
		fmt.Fprint(out, experiments.ChartFig5(unsw, "train"))
	case "fig5b":
		fmt.Fprint(out, experiments.FormatFig5(unsw, "test"))
		fmt.Fprint(out, experiments.ChartFig5(unsw, "test"))
	case "fig5c":
		fmt.Fprint(out, experiments.FormatFig5(nsl, "train"))
		fmt.Fprint(out, experiments.ChartFig5(nsl, "train"))
	case "fig5d":
		fmt.Fprint(out, experiments.FormatFig5(nsl, "test"))
		fmt.Fprint(out, experiments.ChartFig5(nsl, "test"))
	case "ext-anomaly":
		rows, err := experiments.RunAnomalyComparison(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, metrics.FormatTable("EXT: ANOMALY DETECTION vs SUPERVISED (NSL-KDD, paper §VI)", rows))
	case "ext-signature":
		rows, err := experiments.RunSignatureStudy(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, metrics.FormatTable("EXT: SIGNATURE ENGINE vs KNOWN ATTACKS AND VARIANTS (paper §VI)", rows))
	case "ext-drift":
		res, err := experiments.RunDriftStudy(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatDrift(res))
	case "ext-transfer":
		res, err := experiments.RunTransfer(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTransfer(res))
	case "ext-ablation":
		rows, err := experiments.RunAblation(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, metrics.FormatTable("EXT: RESBLK ABLATION AT DEPTH 10 (UNSW-NB15)", rows))
	case "all":
		fmt.Fprint(out, experiments.FormatTable1(p))
		fmt.Fprintln(out)
		fig2, err := experiments.RunFig2(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatFig2(fig2))
		fmt.Fprint(out, experiments.ChartFig2(fig2))
		if onset := experiments.DegradationOnset(fig2.Points); onset > 0 {
			fmt.Fprintf(out, "degradation begins after %d parameter layers\n", onset)
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatFig5(unsw, "train"))
		fmt.Fprint(out, experiments.ChartFig5(unsw, "train"))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatFig5(unsw, "test"))
		fmt.Fprint(out, experiments.ChartFig5(unsw, "test"))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatFig5(nsl, "train"))
		fmt.Fprint(out, experiments.ChartFig5(nsl, "train"))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatFig5(nsl, "test"))
		fmt.Fprint(out, experiments.ChartFig5(nsl, "test"))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatTable2(nsl, unsw))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatTable34(nsl))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatTable34(unsw))
		fmt.Fprintln(out)
		t5, err := experiments.RunTable5(p, log)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable5(t5))
		fmt.Fprintln(out)
		if err := runInferBench(p, engine, benchJSON, out, log); err != nil {
			return err
		}
	case "infer":
		return runInferBench(p, engine, benchJSON, out, log)
	case "transport":
		return runTransportBench(p, benchJSON, out, log)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
