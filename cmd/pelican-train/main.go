// Command pelican-train trains any registered model on either synthetic
// dataset and optionally saves a self-contained model artifact servable by
// pelican-serve (architecture spec + fitted preprocessing + weights).
//
// Usage:
//
//	pelican-train -model pelican -dataset unsw-nb15 -records 5000 -epochs 10 -save pelican.plcn
//	pelican-train -model lunet -dataset nsl-kdd -v
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-train:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-train", flag.ContinueOnError)
	var (
		model    = fs.String("model", "pelican", fmt.Sprintf("model to train: %v", models.Names()))
		dataset  = fs.String("dataset", "unsw-nb15", "dataset: unsw-nb15 or nsl-kdd")
		records  = fs.Int("records", 5000, "records to generate")
		epochs   = fs.Int("epochs", 10, "training epochs")
		batch    = fs.Int("batch", 256, "batch size (paper: 4000)")
		lr       = fs.Float64("lr", 0.01, "RMSprop learning rate")
		dropout  = fs.Float64("dropout", 0.6, "block dropout rate")
		kernel   = fs.Int("kernel", 10, "conv kernel size")
		testFrac = fs.Float64("test", 0.2, "held-out test fraction")
		seed     = fs.Int64("seed", 1, "random seed")
		save     = fs.String("save", "", "write a pelican-serve model artifact to this path after training")
		verbose  = fs.Bool("v", false, "per-epoch logging")
		logLevel = fs.String("log-level", "warn", "structured log level on stderr: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel)).With("component", "train")

	var cfg synth.Config
	switch *dataset {
	case "unsw-nb15":
		cfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		cfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	spec, err := models.Lookup(*model)
	if err != nil {
		return err
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "generating %d %s records...\n", *records, cfg.Name)
	ds := gen.Generate(*records, *seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()

	rng := rand.New(rand.NewSource(*seed))
	fold := data.TrainTestSplit(rng, y, *testFrac)
	xTr, yTr := gatherRank3(x, y, fold.Train)
	xTe, yTe := gatherRank3(x, y, fold.Test)

	blockCfg := models.BlockConfig{Features: features, Kernel: *kernel, Pool: 2, Dropout: *dropout}
	stack := spec.Build(rng, rand.New(rand.NewSource(*seed+1)), blockCfg, features, classes)
	opt := nn.NewRMSprop(*lr)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)

	fmt.Fprintf(out, "model %s: %d parameters\n", *model, nn.ParamCount(stack.Params()))
	start := time.Now()
	net.Fit(xTr, yTr, nn.FitConfig{
		Epochs: *epochs, BatchSize: *batch, Shuffle: true, RNG: rng,
		TestX: xTe, TestLabels: yTe,
		Verbose: func(st nn.EpochStats) {
			if *verbose {
				fmt.Fprintf(out, "epoch %3d/%d  train_loss=%.4f  test_loss=%.4f  test_acc=%.4f\n",
					st.Epoch, *epochs, st.TrainLoss, st.TestLoss, st.TestAcc)
			}
		},
	})
	fmt.Fprintf(out, "trained in %s\n", time.Since(start).Round(time.Millisecond))

	conf := metrics.NewConfusion(classes)
	conf.AddAll(yTe, net.PredictClasses(xTe, *batch))
	s := metrics.Summarize(*model, conf, 0)
	fmt.Fprintf(out, "test: DR=%.2f%%  ACC=%.2f%%  FAR=%.2f%%  (TP=%d FP=%d over %d records)\n",
		s.DR, s.ACC, s.FAR, s.TP, s.FP, conf.Total())
	logger.Info("training complete", "model", *model, "dataset", cfg.Name,
		"records", *records, "epochs", *epochs, "dur", time.Since(start),
		"dr", s.DR, "acc", s.ACC, "far", s.FAR)

	if *save != "" {
		artifact, err := serve.NewArtifact(*model, blockCfg, gen.Schema(), pipe, net)
		if err != nil {
			return fmt.Errorf("build artifact: %w", err)
		}
		if err := serve.SaveArtifactFile(*save, artifact); err != nil {
			return fmt.Errorf("save artifact: %w", err)
		}
		fmt.Fprintf(out, "model artifact written to %s (version %s)\n", *save, artifact.Version())
		logger.Info("artifact saved", "path", *save, "version", artifact.Version(), "model", *model)
	}
	return nil
}

// gatherRank3 copies selected rows into the (n, 1, F) input layout.
func gatherRank3(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int) {
	f := x.Dim(1)
	out := tensor.New(len(idx), f)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(out.Row(i), x.Row(j))
		labels[i] = y[j]
	}
	return out.Reshape(len(idx), 1, f), labels
}
