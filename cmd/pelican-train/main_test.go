package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestTrainMLPQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	err := run([]string{
		"-model", "mlp", "-dataset", "nsl-kdd",
		"-records", "600", "-epochs", "3", "-batch", "128",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"model mlp", "trained in", "DR=", "ACC=", "FAR="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTrainSavesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	path := filepath.Join(t.TempDir(), "m.plcn")
	var out bytes.Buffer
	err := run([]string{
		"-model", "cnn", "-dataset", "nsl-kdd",
		"-records", "400", "-epochs", "2", "-batch", "128",
		"-save", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "model artifact written") {
		t.Fatalf("no artifact confirmation:\n%s", out.String())
	}
	// The saved file must load back into a ready-to-score detector.
	a, err := serve.LoadArtifactFile(path)
	if err != nil {
		t.Fatalf("load artifact: %v", err)
	}
	if a.ModelName != "cnn" {
		t.Fatalf("artifact model %q, want cnn", a.ModelName)
	}
	if _, err := a.NewDetector(); err != nil {
		t.Fatalf("rebuild detector: %v", err)
	}
}

func TestTrainRejectsUnknownModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "transformer"}, &out); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTrainRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "cicids"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
