// Command pelican-vet runs the project-specific static analyzers over the
// module: noalloc (hot-path allocation contract), lockscope (no blocking
// under a serving-plane mutex), ctxflow (context threading and goroutine
// discipline), and metricreg (pelican_* metric registry hygiene). It is
// stdlib-only, like everything else in the module.
//
// Usage:
//
//	pelican-vet [flags] [packages]
//
//	pelican-vet ./...                      # whole module (the CI gate)
//	pelican-vet -json ./internal/serve     # machine-readable findings
//	pelican-vet -noalloc=false ./...       # disable one analyzer
//	pelican-vet -metrics-doc SERVING.md ./...  # also fail on catalog drift
//
// Exit status: 0 clean, 1 findings or doc drift, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pelican-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	metricsDoc := fs.String("metrics-doc", "", "cross-check declared metrics against this catalog file (SERVING.md)")
	enabled := map[string]*bool{}
	all := analysis.All()
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pelican-vet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pelican-vet:", err)
		return 2
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags := analysis.Run(pkgs, active)

	var drift []string
	if *metricsDoc != "" {
		declared := analysis.CollectMetrics(pkgs)
		drift, err = analysis.CheckMetricsDoc(*metricsDoc, declared)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pelican-vet:", err)
			return 2
		}
	}

	if *jsonOut {
		out := struct {
			Findings []analysis.Diagnostic `json:"findings"`
			DocDrift []string              `json:"doc_drift,omitempty"`
		}{Findings: diags, DocDrift: drift}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "pelican-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		for _, m := range drift {
			fmt.Println("metrics-doc:", m)
		}
	}
	if len(diags) > 0 || len(drift) > 0 {
		return 1
	}
	return 0
}
