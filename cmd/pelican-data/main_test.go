package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/synth"
)

func TestRunStats(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "nsl-kdd", "-records", "300", "-seed", "3"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"nsl-kdd-synth", "records: 300", "one-hot encoded width: 121", "normal"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSVExportRoundTrips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	var out bytes.Buffer
	err := run([]string{"-dataset", "unsw-nb15", "-records", "120", "-out", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open exported csv: %v", err)
	}
	defer f.Close()
	gen := synth.MustNew(synth.UNSWNB15Config())
	ds, err := data.ReadCSV(f, gen.Schema())
	if err != nil {
		t.Fatalf("reimport: %v", err)
	}
	if ds.Len() != 120 {
		t.Fatalf("reimported %d records, want 120", ds.Len())
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "kdd99"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
