// Command pelican-data generates, inspects and exports the synthetic
// NSL-KDD / UNSW-NB15 shaped datasets.
//
// Usage:
//
//	pelican-data -dataset nsl-kdd -records 1000 -out nsl.csv
//	pelican-data -dataset unsw-nb15 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/data"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-data:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-data", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "nsl-kdd", "dataset: unsw-nb15 or nsl-kdd")
		records = fs.Int("records", 1000, "records to generate")
		seed    = fs.Int64("seed", 1, "random seed")
		outPath = fs.String("out", "", "write CSV to this path")
		stats   = fs.Bool("stats", true, "print dataset statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg synth.Config
	switch *dataset {
	case "unsw-nb15":
		cfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		cfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}
	ds := gen.Generate(*records, *seed)
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("generated dataset failed validation: %w", err)
	}

	if *stats {
		schema := ds.Schema
		fmt.Fprintf(out, "dataset: %s\n", cfg.Name)
		fmt.Fprintf(out, "records: %d\n", ds.Len())
		fmt.Fprintf(out, "raw features: %d numeric + %d categorical\n",
			schema.NumNumeric(), len(schema.Categorical))
		fmt.Fprintf(out, "one-hot encoded width: %d\n", schema.EncodedWidth())
		fmt.Fprintf(out, "class distribution:\n")
		counts := ds.ClassCounts()
		for i, name := range schema.ClassNames {
			fmt.Fprintf(out, "  %-16s %7d (%.2f%%)\n", name, counts[i],
				100*float64(counts[i])/float64(ds.Len()))
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := data.WriteCSV(f, ds); err != nil {
			return fmt.Errorf("write CSV: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
