// Command pelican-nids runs the live intrusion-detection pipeline of the
// paper's Fig. 1 on simulated traffic: train (or load) a detector, stream
// flows through it, and report alerts plus realized DR/FAR.
//
// Usage:
//
//	pelican-nids -detector lunet -flows 3000
//	pelican-nids -detector signature -flows 2000
//	pelican-nids -detector anomaly -flows 2000 -show-alerts 5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/signature"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pelican-nids:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pelican-nids", flag.ContinueOnError)
	var (
		detName    = fs.String("detector", "lunet", "detector: any model name, or \"signature\" / \"anomaly\"")
		dataset    = fs.String("dataset", "nsl-kdd", "dataset shape: unsw-nb15 or nsl-kdd")
		trainN     = fs.Int("train", 3000, "records used to train/profile the detector")
		flows      = fs.Int("flows", 2000, "flows to stream")
		epochs     = fs.Int("epochs", 6, "training epochs for model detectors")
		workers    = fs.Int("workers", 4, "detection worker goroutines")
		seed       = fs.Int64("seed", 1, "random seed")
		showAlerts = fs.Int("show-alerts", 3, "print the first N alerts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg synth.Config
	switch *dataset {
	case "unsw-nb15":
		cfg = synth.UNSWNB15Config()
	case "nsl-kdd":
		cfg = synth.NSLKDDConfig()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "building %q detector from %d training records...\n", *detName, *trainN)
	det, err := buildDetector(*detName, gen, *trainN, *epochs, *seed, out)
	if err != nil {
		return err
	}

	src, err := flow.NewSource(gen, flow.DefaultSourceConfig())
	if err != nil {
		return err
	}
	pipe := nids.New(det, nids.Config{Workers: *workers})

	fmt.Fprintf(out, "streaming %d flows through %s (%d workers)...\n", *flows, det.Name(), *workers)
	flowCh := make(chan flow.Flow, 1)
	ctx := context.Background()
	go src.Run(ctx, flowCh, *flows)

	shown := 0
	start := time.Now()
	err = pipe.Run(ctx, flowCh, func(a nids.Alert) {
		if shown < *showAlerts {
			shown++
			fmt.Fprintf(out, "ALERT %s -> %s:%d class=%d score=%.3f rule=%d\n",
				a.Flow.SrcIP, a.Flow.DstIP, a.Flow.DstPort, a.Verdict.Class, a.Verdict.Score, a.Verdict.RuleID)
		}
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := pipe.Stats()
	fmt.Fprintf(out, "%s\n", st)
	fmt.Fprintf(out, "throughput: %.0f flows/s\n", float64(st.Processed)/elapsed.Seconds())
	return nil
}

// buildDetector constructs and trains/profiles the requested detector.
func buildDetector(name string, gen *synth.Generator, trainN, epochs int, seed int64, out io.Writer) (nids.Detector, error) {
	train := gen.Generate(trainN, seed)
	switch name {
	case "signature":
		rules, err := signature.MineRules(train, 3)
		if err != nil {
			return nil, err
		}
		eng, err := signature.NewEngine(train.Schema, rules)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "mined %d signatures\n", eng.RuleCount())
		return &nids.SignatureDetector{Engine: eng}, nil

	case "anomaly":
		x, y, pipe := data.Preprocess(train)
		var normalIdx []int
		for i, yi := range y {
			if yi == 0 {
				normalIdx = append(normalIdx, i)
			}
		}
		normal := tensor.New(len(normalIdx), x.Dim(1))
		for i, j := range normalIdx {
			copy(normal.Row(i), x.Row(j))
		}
		th, err := anomaly.Calibrate(anomaly.NewGaussian(), normal, 0.99)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "profiled %d normal flows (threshold %.3f)\n", normal.Dim(0), th.Threshold)
		return &nids.AnomalyDetector{Profile: th, Pipe: pipe}, nil

	default:
		spec, err := models.Lookup(name)
		if err != nil {
			return nil, err
		}
		x, y, pipe := data.Preprocess(train)
		features := gen.Schema().EncodedWidth()
		classes := gen.Schema().NumClasses()
		rng := rand.New(rand.NewSource(seed))
		stack := spec.Build(rng, rand.New(rand.NewSource(seed+1)), models.PaperBlockConfig(features), features, classes)
		opt := nn.NewRMSprop(0.01)
		opt.MaxNorm = 5
		net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
		x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
		net.Fit(x3, y, nn.FitConfig{Epochs: epochs, BatchSize: 256, Shuffle: true, RNG: rng})
		return &nids.ModelDetector{ModelName: name, Net: net, Pipe: pipe}, nil
	}
}
