package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestNIDSSignatureDetector(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-detector", "signature", "-dataset", "nsl-kdd",
		"-train", "1500", "-flows", "400", "-workers", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"mined", "processed=400", "throughput"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestNIDSAnomalyDetector(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-detector", "anomaly", "-dataset", "nsl-kdd",
		"-train", "1200", "-flows", "300",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "profiled") {
		t.Fatalf("missing profiling line:\n%s", out.String())
	}
}

func TestNIDSModelDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	var out bytes.Buffer
	err := run([]string{
		"-detector", "mlp", "-dataset", "nsl-kdd",
		"-train", "800", "-flows", "300", "-epochs", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "DR=") {
		t.Fatalf("missing stats line:\n%s", out.String())
	}
}

func TestNIDSRejectsUnknownDetector(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-detector", "quantum"}, &out); err == nil {
		t.Fatal("unknown detector accepted")
	}
}
