package repro_test

import (
	"runtime"
	"testing"
)

// The steady-state hot path runs entirely on reused layer buffers and
// workspace checkouts: once warm, a forward pass and a train step measure
// 0 allocs/run single-threaded. The budgets below leave headroom for
// incidental runtime allocations only; the pre-optimization baseline was
// ~1229 allocs per forward and ~3256 per train step (see PERF.md), so any
// broken reuse path blows through them immediately.
//
// GOMAXPROCS is pinned to 1 for the measurement because the multicore GEMM
// dispatch path intentionally allocates a closure and WaitGroup per large
// product — a few dozen bytes that don't scale with model size.
const (
	forwardAllocBudget   = 16
	trainStepAllocBudget = 48
)

// TestPelicanForwardAllocBudget pins the allocation-free steady state of
// the inference hot path with testing.AllocsPerRun.
func TestPelicanForwardAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow at full network width")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	net, x, _ := pelicanAtPaperWidth(t)
	// Warm every reuse buffer and workspace bucket.
	for i := 0; i < 2; i++ {
		net.Predict(x)
	}
	avg := testing.AllocsPerRun(3, func() {
		net.Predict(x)
	})
	if avg > forwardAllocBudget {
		t.Fatalf("steady-state Pelican forward pass allocates %.1f objects/run, budget %d", avg, forwardAllocBudget)
	}
	t.Logf("steady-state forward pass: %.1f allocs/run (budget %d)", avg, forwardAllocBudget)
}

// TestPelicanTrainStepAllocBudget does the same for a full train step
// (forward + backward + RMSprop update).
func TestPelicanTrainStepAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow at full network width")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	net, x, y := pelicanAtPaperWidth(t)
	for i := 0; i < 2; i++ {
		net.TrainBatch(x, y)
	}
	avg := testing.AllocsPerRun(3, func() {
		net.TrainBatch(x, y)
	})
	if avg > trainStepAllocBudget {
		t.Fatalf("steady-state train step allocates %.1f objects/run, budget %d", avg, trainStepAllocBudget)
	}
	t.Logf("steady-state train step: %.1f allocs/run (budget %d)", avg, trainStepAllocBudget)
}
