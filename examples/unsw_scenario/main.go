// UNSW scenario: the paper's headline comparison in miniature — Pelican
// (Residual-41) against LuNet on UNSW-NB15-shaped traffic with proper
// k-fold cross-validation, reporting per-class detection as well as the
// aggregate paper metrics. This is the workflow a practitioner would run
// to decide between the two designs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

const (
	records = 4000
	folds   = 3 // the paper uses 10; 3 keeps the example quick
	epochs  = 6
	batch   = 256
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := synth.New(synth.UNSWNB15Config())
	if err != nil {
		return err
	}
	ds := gen.Generate(records, 7)
	x, y, _ := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth() // 196
	classes := gen.Schema().NumClasses()    // 10
	classNames := gen.Schema().ClassNames

	rng := rand.New(rand.NewSource(1))
	cv := data.StratifiedKFold(rng, y, folds)

	designs := []struct {
		name  string
		build func(r, d *rand.Rand) *nn.Sequential
	}{
		{"LuNet", func(r, d *rand.Rand) *nn.Sequential {
			return models.BuildLuNet(r, d, 3, models.PaperBlockConfig(features), classes)
		}},
		{"Pelican", func(r, d *rand.Rand) *nn.Sequential {
			return models.BuildPelican(r, d, models.PaperBlockConfig(features), classes)
		}},
	}

	for _, design := range designs {
		conf := metrics.NewConfusion(classes)
		for fi, fold := range cv {
			r := rand.New(rand.NewSource(int64(fi)*13 + 1))
			d := rand.New(rand.NewSource(int64(fi)*13 + 2))
			stack := design.build(r, d)
			opt := nn.NewRMSprop(0.01)
			opt.MaxNorm = 5
			net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)

			xTr, yTr := gather(x, y, fold.Train, features)
			xTe, yTe := gather(x, y, fold.Test, features)
			net.Fit(xTr, yTr, nn.FitConfig{
				Epochs: epochs, BatchSize: batch, Shuffle: true, RNG: r,
			})
			conf.AddAll(yTe, net.PredictClasses(xTe, batch))
			fmt.Printf("%s fold %d/%d done\n", design.name, fi+1, folds)
		}

		s := metrics.Summarize(design.name, conf, 0)
		fmt.Printf("\n%s over %d-fold CV: DR=%.2f%% ACC=%.2f%% FAR=%.2f%%\n",
			design.name, folds, s.DR, s.ACC, s.FAR)
		fmt.Println("per-class recall:")
		for _, rep := range conf.PerClass() {
			if rep.Support == 0 {
				continue
			}
			fmt.Printf("  %-16s recall=%.3f precision=%.3f n=%d\n",
				classNames[rep.Class], rep.Recall, rep.Precision, rep.Support)
		}
		fmt.Println()
	}
	return nil
}

func gather(x *tensor.Tensor, y []int, idx []int, features int) (*tensor.Tensor, []int) {
	out := tensor.New(len(idx), features)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(out.Row(i), x.Row(j))
		labels[i] = y[j]
	}
	return out.Reshape(len(idx), 1, features), labels
}
