// Model zoo: build every registered design, print its architecture summary
// and parameter count, then demonstrate checkpointing — train one model
// briefly, save it, load it into a fresh network, and verify the
// predictions survive the round trip.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small feature width keeps the zoo tour instant; real datasets use
	// 121 (NSL-KDD) or 196 (UNSW-NB15).
	const features, classes = 32, 5
	cfg := models.BlockConfig{Features: features, Kernel: 10, Pool: 2, Dropout: 0.6}

	fmt.Println("=== registered designs ===")
	for _, name := range models.Names() {
		spec, err := models.Lookup(name)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(1))
		stack := spec.Build(rng, rand.New(rand.NewSource(2)), cfg, features, classes)
		fmt.Printf("\n%s — %s\n", spec.Name, spec.Description)
		fmt.Printf("  parameters: %d\n", nn.ParamCount(stack.Params()))
	}

	// Architecture detail for the paper's design.
	fmt.Println("\n=== Pelican (Residual-41) layer stack ===")
	rng := rand.New(rand.NewSource(3))
	pelican := models.BuildPelican(rng, rand.New(rand.NewSource(4)), cfg, classes)
	fmt.Print(pelican.Summary())

	// Checkpoint round trip on real-shaped data.
	fmt.Println("=== checkpoint round trip ===")
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}
	ds := gen.Generate(800, 5)
	x, y, _ := data.Preprocess(ds)
	f := gen.Schema().EncodedWidth()
	k := gen.Schema().NumClasses()

	build := func(seed int64) *nn.Network {
		r := rand.New(rand.NewSource(seed))
		stack := models.BuildResidual21(r, rand.New(rand.NewSource(seed+1)),
			models.PaperBlockConfig(f), k)
		return nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewRMSprop(0.01))
	}
	src := build(10)
	x3 := x.Reshape(x.Dim(0), 1, f)
	src.Fit(x3, y, nn.FitConfig{Epochs: 2, BatchSize: 128, Shuffle: true,
		RNG: rand.New(rand.NewSource(6))})

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		return err
	}
	fmt.Printf("checkpoint size: %d bytes\n", buf.Len())

	dst := build(99) // different init — weights must come from the file
	if err := dst.Load(&buf); err != nil {
		return err
	}
	a, b := src.Predict(x3), dst.Predict(x3)
	if !tensor.ApproxEqual(a, b, 1e-12) {
		return fmt.Errorf("loaded model diverges from saved model")
	}
	fmt.Println("loaded predictions match saved model exactly")
	return nil
}
