// Serving client: the full train → ship → serve → score loop in one
// process. A small detector is trained and packed into a self-contained
// model artifact, a scoring server is started on a loopback port, flows
// are scored over HTTP/JSON, and a second artifact is hot-reloaded with
// zero downtime — the deployment story pelican-train and pelican-serve
// provide as separate binaries.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

const trainRecords = 1200

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}

	// Train two detector generations: the artifact we serve first and the
	// retrained one we hot-reload onto the running server.
	fmt.Println("training two mlp generations...")
	gen1, err := trainArtifact(gen, 1)
	if err != nil {
		return err
	}
	gen2, err := trainArtifact(gen, 2)
	if err != nil {
		return err
	}

	srv, err := serve.New(gen1, serve.Config{Replicas: 2, MaxBatch: 16})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s version %s at %s\n", gen1.ModelName, gen1.Version(), base)

	// Score a few live flows over the wire.
	flows := gen.Generate(8, 99)
	var req struct {
		Records []serve.RecordJSON `json:"records"`
	}
	for _, r := range flows.Records {
		req.Records = append(req.Records, serve.RecordJSON{Numeric: r.Numeric, Categorical: r.Categorical})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/detect-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var br struct {
		ModelVersion string              `json:"model_version"`
		Verdicts     []serve.VerdictJSON `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		resp.Body.Close()
		return err
	}
	resp.Body.Close()
	for i, v := range br.Verdicts {
		truth := gen.Schema().ClassNames[flows.Records[i].Label]
		fmt.Printf("  flow %d: verdict=%-10s attack=%-5v score=%.2f (truth: %s)\n",
			i, v.ClassName, v.IsAttack, v.Score, truth)
	}

	// Hot-reload the retrained generation through the admin endpoint; the
	// server keeps answering throughout.
	dir, err := os.MkdirTemp("", "pelican-serving-client")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "gen2.plcn")
	if err := serve.SaveArtifactFile(path, gen2); err != nil {
		return err
	}
	rl, _ := json.Marshal(map[string]string{"path": path})
	resp, err = http.Post(base+"/v1/reload", "application/json", bytes.NewReader(rl))
	if err != nil {
		return err
	}
	var info serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		resp.Body.Close()
		return err
	}
	resp.Body.Close()
	fmt.Printf("hot-reloaded: now serving version %s (was %s)\n", info.Version, br.ModelVersion)

	// Graceful shutdown: drain, stop the listener, drain the batcher.
	srv.BeginDrain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("clean shutdown")
	return nil
}

// trainArtifact trains a small MLP detector and packs it into an artifact.
func trainArtifact(gen *synth.Generator, seed int64) (*serve.Artifact, error) {
	ds := gen.Generate(trainRecords, seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(seed))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(seed+1)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
	net.Fit(x3, y, nn.FitConfig{Epochs: 4, BatchSize: 128, Shuffle: true, RNG: rng})
	return serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
}
