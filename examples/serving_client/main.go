// Serving client: the full train → ship → serve → score → canary loop in
// one process. A small detector is trained and packed into a
// self-contained model artifact and served from the registry's live slot;
// a second generation is then staged into the shadow slot, where live
// traffic is mirrored onto it and per-slot agreement counters accumulate —
// the evidence a promotion decision reads. The shadow is promoted to live
// with the prior generation retained, and rolled back to show the exact
// prior version restored — the deployment story pelican-train and
// pelican-serve provide as separate binaries.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

const trainRecords = 1200

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}

	// Train two detector generations: the artifact we serve first and the
	// candidate we stage, mirror, and promote on the running server.
	fmt.Println("training two mlp generations...")
	gen1, err := trainArtifact(gen, 1)
	if err != nil {
		return err
	}
	gen2, err := trainArtifact(gen, 2)
	if err != nil {
		return err
	}

	srv, err := serve.New(gen1, serve.Config{Replicas: 2, MaxBatch: 16})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := serve.NewClient(base)
	fmt.Printf("serving %s version %s at %s (live slot)\n", gen1.ModelName, gen1.Version(), base)

	// Score a few live flows over the wire.
	flows := gen.Generate(8, 99)
	recs := make([]*data.Record, len(flows.Records))
	for i := range flows.Records {
		recs[i] = &flows.Records[i]
	}
	verdicts, liveVersion, err := client.Score(recs)
	if err != nil {
		return err
	}
	for i, v := range verdicts {
		truth := gen.Schema().ClassNames[flows.Records[i].Label]
		fmt.Printf("  flow %d: class=%-2d attack=%-5v score=%.2f (truth: %s)\n",
			i, v.Class, v.IsAttack, v.Score, truth)
	}

	// Stage the candidate into the shadow slot. From here on, every live
	// request is also mirrored onto it, best-effort and off the hot path.
	dir, err := os.MkdirTemp("", "pelican-serving-client")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "gen2.plcn")
	if err := serve.SaveArtifactFile(path, gen2); err != nil {
		return err
	}
	info, err := client.LoadTag(path, "shadow")
	if err != nil {
		return err
	}
	fmt.Printf("staged %s into the shadow slot (live stays %s)\n", info.Version, liveVersion)

	// Drive evaluation traffic at live; the mirrors accumulate agreement
	// counters on the shadow slot.
	eval := gen.Generate(256, 7)
	evalRecs := make([]*data.Record, len(eval.Records))
	for i := range eval.Records {
		evalRecs[i] = &eval.Records[i]
	}
	for lo := 0; lo < len(evalRecs); lo += 32 {
		hi := min(lo+32, len(evalRecs))
		if _, _, err := client.Score(evalRecs[lo:hi]); err != nil {
			return err
		}
	}
	// Mirrors are asynchronous: give them a moment to land.
	shadowStats, err := waitForMirrors(client, int64(len(evalRecs))/2)
	if err != nil {
		return err
	}
	fmt.Printf("shadow evaluation: %d mirrored, %d agree, %d disagree (%d dropped)\n",
		shadowStats.Mirrored, shadowStats.Agreements, shadowStats.Disagreements, shadowStats.MirrorDropped)

	// Promote: the shadow becomes live atomically; the displaced live
	// generation is retained for rollback.
	info, err = client.Promote()
	if err != nil {
		return err
	}
	fmt.Printf("promoted: now serving version %s (was %s, retained for rollback)\n",
		info.Version, info.PreviousVersion)
	if _, v2, err := client.Score(recs[:2]); err != nil {
		return err
	} else if v2 != gen2.Version() {
		return fmt.Errorf("post-promote scoring answered %s, want %s", v2, gen2.Version())
	}

	// Rollback: the exact prior version returns.
	info, err = client.Rollback()
	if err != nil {
		return err
	}
	fmt.Printf("rolled back: serving version %s again\n", info.Version)
	if info.Version != gen1.Version() {
		return fmt.Errorf("rollback restored %s, want %s", info.Version, gen1.Version())
	}

	// Graceful shutdown: drain, stop the listener, drain the batchers.
	srv.BeginDrain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("clean shutdown")
	return nil
}

// waitForMirrors polls /v2/models until at least want mirrors have landed
// on the shadow slot (they are asynchronous and best-effort).
func waitForMirrors(client *serve.Client, want int64) (serve.SlotStatsJSON, error) {
	deadline := time.Now().Add(5 * time.Second)
	var last serve.SlotStatsJSON
	for {
		ms, err := client.Models()
		if err != nil {
			return last, err
		}
		for _, sl := range ms.Slots {
			if sl.Tag == "shadow" {
				last = sl.Stats
			}
		}
		if last.Mirrored >= want || time.Now().After(deadline) {
			return last, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// trainArtifact trains a small MLP detector and packs it into an artifact.
func trainArtifact(gen *synth.Generator, seed int64) (*serve.Artifact, error) {
	ds := gen.Generate(trainRecords, seed)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(seed))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(seed+1)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
	net.Fit(x3, y, nn.FitConfig{Epochs: 4, BatchSize: 128, Shuffle: true, RNG: rng})
	return serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
}
