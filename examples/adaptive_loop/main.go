// Adaptive loop: the full self-healing deployment in one process — the
// closing of the loop the paper's §VI motivates. A detector is trained and
// served over HTTP; a live pipeline scores simulated traffic against the
// server while the adaptation loop (internal/adapt) watches the score,
// alert-rate, and feature distributions through the pipeline's feedback
// tap. Mid-stream, every attack class mutates into a new variant: detection
// rate collapses, the drift monitor trips, the current model is warm-start
// retrained on a sliding buffer of recent flows, and the new generation is
// hot-reloaded into the server through /v1/reload — after which detection
// recovers, with the server answering throughout.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/adapt"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
)

const (
	trainRecords = 2000
	phaseFlows   = 3000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := synth.NSLKDDConfig()
	gen, err := synth.New(cfg)
	if err != nil {
		return err
	}

	// Train the first generation and serve it.
	fmt.Println("training the initial detector...")
	art, err := trainArtifact(gen)
	if err != nil {
		return err
	}
	srv, err := serve.New(art, serve.Config{Replicas: 2, MaxBatch: 16})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := serve.NewClient(base)
	fmt.Printf("serving %s version %s at %s\n\n", art.ModelName, art.Version(), base)

	// The adaptation loop publishes retrained generations back into the
	// server over the same admin endpoint an operator would use.
	dir, err := os.MkdirTemp("", "adaptive-loop")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	loop, err := adapt.NewLoop(art, adapt.Config{
		Monitor:     adapt.MonitorConfig{RefWindow: 1024, Window: 512},
		BufferCap:   2048,
		ArtifactDir: dir,
		Publisher:   adapt.HTTPPublisher{Client: client},
		OnEvent:     func(e adapt.Event) { fmt.Println("  " + e.String()) },
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		loop.Run(ctx)
	}()

	// The pipeline scores flows against the server (a RemoteDetector), so
	// hot-reloads are immediately visible to it, and feeds every verdict
	// to the loop through the tap.
	det := &serve.RemoteDetector{Client: client}
	src, err := flow.NewSource(gen, flow.SourceConfig{
		AttackRate: 0.15, EpisodeEvery: 200, EpisodeLen: 40, EpisodeAttackRate: 0.8, Seed: 9,
	})
	if err != nil {
		return err
	}
	phase := func(name string) nids.StatsSnapshot {
		p := nids.New(det, nids.Config{Workers: 2, MicroBatch: 8, Tap: loop.Observe})
		flows := make(chan flow.Flow, 32)
		go func() {
			defer close(flows)
			for i := 0; i < phaseFlows; i++ {
				flows <- src.Next()
			}
		}()
		p.Run(context.Background(), flows, nil)
		st := p.Stats()
		fmt.Printf("%-28s DR=%5.1f%%  FAR=%4.1f%%  (version %s)\n",
			name, st.DR()*100, st.FAR()*100, det.ModelVersion())
		return st
	}

	baseline := phase("1. stationary traffic:")

	// New attack variants: every attack class re-draws its generative
	// profile while normal traffic stays put — drift that lowers DR
	// without inflating FAR, the §VI scenario a deployed NIDS faces.
	k := gen.Schema().NumClasses()
	attacks := make([]int, 0, k-1)
	for c := 1; c < k; c++ {
		attacks = append(attacks, c)
	}
	variant, err := synth.NewVariant(cfg, cfg.ProfileSeed+202, attacks)
	if err != nil {
		return err
	}
	if err := src.SetGenerator(variant); err != nil {
		return err
	}
	fmt.Println("\n-- attack variants injected --")
	drifted := phase("2. drifted traffic:")

	// Give the loop a moment in case the trip landed at the phase edge.
	for i := 0; i < 100 && loop.Retrains() == 0; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println()
	recovered := phase("3. after hot-reload:")

	fmt.Printf("\nDR %.1f%% -> %.1f%% under drift, %.1f%% after adaptation; retrains=%d, generations: %s -> %s\n",
		baseline.DR()*100, drifted.DR()*100, recovered.DR()*100,
		loop.Retrains(), art.Version(), loop.Version())

	cancel()
	<-loopDone
	srv.BeginDrain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("clean shutdown")
	return nil
}

// trainArtifact trains a small MLP detector and packs it into an artifact.
func trainArtifact(gen *synth.Generator) (*serve.Artifact, error) {
	ds := gen.Generate(trainRecords, 1)
	x, y, pipe := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(1))
	stack := models.BuildMLP(rng, rand.New(rand.NewSource(2)), features, classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	net.Fit(x.Reshape(x.Dim(0), 1, features), y, nn.FitConfig{
		Epochs: 6, BatchSize: 128, Shuffle: true, RNG: rng,
	})
	return serve.NewArtifact("mlp", models.PaperBlockConfig(features), gen.Schema(), pipe, net)
}
