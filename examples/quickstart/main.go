// Quickstart: generate NSL-KDD-shaped traffic, train Pelican's smaller
// sibling (Residual-21) for a few epochs, and evaluate with the paper's
// metrics. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Generate a dataset (the stand-in for downloading NSL-KDD).
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}
	ds := gen.Generate(3000, 42)

	// 2. Preprocess exactly as the paper does (§V-A): one-hot encode and
	// standardize.
	x, y, _ := data.Preprocess(ds)
	features := gen.Schema().EncodedWidth() // 121 for NSL-KDD
	classes := gen.Schema().NumClasses()    // 5

	// 3. Split train/test; models take the paper's (batch, 1, F) shape.
	rng := rand.New(rand.NewSource(1))
	fold := data.TrainTestSplit(rng, y, 0.2)
	gather := func(idx []int) (*tensor.Tensor, []int) {
		out := tensor.New(len(idx), features)
		labels := make([]int, len(idx))
		for i, j := range idx {
			copy(out.Row(i), x.Row(j))
			labels[i] = y[j]
		}
		return out.Reshape(len(idx), 1, features), labels
	}
	xTr, yTr := gather(fold.Train)
	xTe, yTe := gather(fold.Test)

	// 4. Build Residual-21 (5 residual blocks) and train with RMSprop,
	// the paper's optimizer (Table I).
	stack := models.BuildResidual21(rng, rand.New(rand.NewSource(2)),
		models.PaperBlockConfig(features), classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)

	fmt.Printf("training Residual-21 (%d parameters) on %d records...\n",
		nn.ParamCount(stack.Params()), xTr.Dim(0))
	net.Fit(xTr, yTr, nn.FitConfig{
		Epochs: 5, BatchSize: 256, Shuffle: true, RNG: rng,
		TestX: xTe, TestLabels: yTe,
		Verbose: func(st nn.EpochStats) {
			fmt.Printf("  epoch %d: train_loss=%.4f test_acc=%.4f\n",
				st.Epoch, st.TrainLoss, st.TestAcc)
		},
	})

	// 5. Evaluate with the paper's DR / ACC / FAR (Eqs. 3–5).
	conf := metrics.NewConfusion(classes)
	conf.AddAll(yTe, net.PredictClasses(xTe, 256))
	s := metrics.Summarize("Residual-21", conf, 0)
	fmt.Printf("DR=%.2f%%  ACC=%.2f%%  FAR=%.2f%%\n", s.DR, s.ACC, s.FAR)
	return nil
}
