// Custom model: compose the nn layer library directly instead of using the
// models registry — here, a hybrid "wide residual" variant that halves the
// paper's depth but doubles each block's convolution stages, demonstrating
// how downstream users can experiment with their own block designs against
// the same data and metrics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// wideBlock is a custom residual block: BN head with a two-stage conv body
// (the paper's block uses one conv + one GRU; this trades recurrence for a
// second spatial stage).
func wideBlock(rng, dropRNG *rand.Rand, f int) nn.Layer {
	body := nn.NewSequential(
		nn.NewConv1D(rng, f, f, 5, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewConv1D(rng, f, f, 5, nn.PaddingSame),
		nn.NewReLU(),
		nn.NewBatchNorm(f),
		nn.NewDropout(dropRNG, 0.4),
	)
	return nn.NewPreShortcut(nn.NewBatchNorm(f), body)
}

func run() error {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}
	ds := gen.Generate(3000, 99)
	x, y, _ := data.Preprocess(ds)
	f := gen.Schema().EncodedWidth()
	k := gen.Schema().NumClasses()

	rng := rand.New(rand.NewSource(1))
	dropRNG := rand.New(rand.NewSource(2))

	// Five wide residual blocks + the paper's GAP + dense head.
	stack := nn.NewSequential()
	for i := 0; i < 5; i++ {
		stack.Add(wideBlock(rng, dropRNG, f))
	}
	stack.Add(nn.NewGlobalAvgPool1D())
	stack.Add(nn.NewDense(rng, f, k))

	fmt.Println("custom wide-residual architecture:")
	fmt.Print(stack.Summary())

	opt := nn.NewRMSprop(0.005)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)

	fold := data.TrainTestSplit(rng, y, 0.2)
	gather := func(idx []int) (*tensor.Tensor, []int) {
		out := tensor.New(len(idx), f)
		labels := make([]int, len(idx))
		for i, j := range idx {
			copy(out.Row(i), x.Row(j))
			labels[i] = y[j]
		}
		return out.Reshape(len(idx), 1, f), labels
	}
	xTr, yTr := gather(fold.Train)
	xTe, yTe := gather(fold.Test)

	// Cosine-annealed learning rate with early stopping — training-loop
	// features beyond the paper's fixed-rate setup.
	net.Fit(xTr, yTr, nn.FitConfig{
		Epochs: 8, BatchSize: 256, Shuffle: true, RNG: rng,
		TestX: xTe, TestLabels: yTe,
		Schedule: nn.CosineDecay{Floor: 0.1},
		Patience: 3,
		Verbose: func(st nn.EpochStats) {
			fmt.Printf("  epoch %d: train_loss=%.4f test_loss=%.4f test_acc=%.4f\n",
				st.Epoch, st.TrainLoss, st.TestLoss, st.TestAcc)
		},
	})

	conf := metrics.NewConfusion(k)
	conf.AddAll(yTe, net.PredictClasses(xTe, 256))
	s := metrics.Summarize("wide-residual", conf, 0)
	fmt.Printf("DR=%.2f%%  ACC=%.2f%%  FAR=%.2f%%\n", s.DR, s.ACC, s.FAR)
	return nil
}
