// Streaming NIDS: the deployment picture of the paper's Fig. 1 — a trained
// detector watching live traffic. Three detector generations run over the
// same simulated stream so their alert behaviour can be compared directly:
// a Snort-style signature engine (§VI), a Gaussian anomaly profile (§VI),
// and a supervised neural detector.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/anomaly"
	"repro/internal/data"
	"repro/internal/flow"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/signature"
	"repro/internal/synth"
	"repro/internal/tensor"
)

const (
	trainRecords = 2500
	streamFlows  = 2000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := synth.New(synth.NSLKDDConfig())
	if err != nil {
		return err
	}
	train := gen.Generate(trainRecords, 11)

	detectors, err := buildDetectors(gen, train)
	if err != nil {
		return err
	}

	for _, det := range detectors {
		// Each detector sees an identical stream (same source seed).
		src, err := flow.NewSource(gen, flow.DefaultSourceConfig())
		if err != nil {
			return err
		}
		pipe := nids.New(det, nids.Config{Workers: 4})
		flows := make(chan flow.Flow, 1)
		go src.Run(context.Background(), flows, streamFlows)
		if err := pipe.Run(context.Background(), flows, nil); err != nil {
			return err
		}
		st := pipe.Stats()
		fmt.Printf("%-18s %s\n", det.Name(), st)
	}
	fmt.Println("\nnote the generational trade-off the paper describes (§VI):")
	fmt.Println("signatures are precise but blind to variants; anomaly profiles")
	fmt.Println("alarm broadly; the supervised model balances DR against FAR.")
	return nil
}

func buildDetectors(gen *synth.Generator, train *data.Dataset) ([]nids.Detector, error) {
	// Signature engine mined from the training attacks.
	rules, err := signature.MineRules(train, 3)
	if err != nil {
		return nil, err
	}
	eng, err := signature.NewEngine(train.Schema, rules)
	if err != nil {
		return nil, err
	}

	// Preprocessing pipeline shared by the statistical detectors.
	x, y, pipe := data.Preprocess(train)

	// Gaussian anomaly profile on normal traffic only.
	var normalIdx []int
	for i, yi := range y {
		if yi == 0 {
			normalIdx = append(normalIdx, i)
		}
	}
	normal := tensor.New(len(normalIdx), x.Dim(1))
	for i, j := range normalIdx {
		copy(normal.Row(i), x.Row(j))
	}
	profile, err := anomaly.Calibrate(anomaly.NewGaussian(), normal, 0.99)
	if err != nil {
		return nil, err
	}

	// Supervised neural detector (LuNet keeps the example fast; swap in
	// models.BuildPelican for the full design).
	features := gen.Schema().EncodedWidth()
	classes := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(3))
	stack := models.BuildLuNet(rng, rand.New(rand.NewSource(4)), 2,
		models.PaperBlockConfig(features), classes)
	opt := nn.NewRMSprop(0.01)
	opt.MaxNorm = 5
	net := nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), opt)
	x3 := x.Reshape(x.Dim(0), 1, x.Dim(1))
	fmt.Println("training the supervised detector...")
	net.Fit(x3, y, nn.FitConfig{Epochs: 5, BatchSize: 256, Shuffle: true, RNG: rng})

	return []nids.Detector{
		&nids.SignatureDetector{Engine: eng},
		&nids.AnomalyDetector{Profile: profile, Pipe: pipe},
		&nids.ModelDetector{ModelName: "lunet", Net: net, Pipe: pipe},
	}, nil
}
