package repro_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nids"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// tinyConfig is a small NSL-shaped dataset for fast integration tests.
func tinyConfig() synth.Config {
	cfg := synth.NSLKDDConfig()
	cfg.Name = "nsl-integration"
	cfg.NumericName = cfg.NumericName[:8]
	cfg.Cats = []synth.CatSpec{{Name: "proto", Card: 3}, {Name: "flag", Card: 4}}
	cfg.Classes = []synth.ClassSpec{
		{Name: "normal", Weight: 0.55},
		{Name: "dos", Weight: 0.30},
		{Name: "probe", Weight: 0.15},
	}
	cfg.LatentDim = 6
	cfg.QuadTerms = 4
	return cfg
}

// TestEndToEndTrainServeDetect exercises the full production path: generate
// → preprocess → train → checkpoint to disk → reload → serve in the NIDS
// pipeline → verify the pipeline's counters agree with offline evaluation.
func TestEndToEndTrainServeDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	gen, err := synth.New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := gen.Generate(1000, 31)
	x, y, pipe := data.Preprocess(train)
	f := gen.Schema().EncodedWidth()
	k := gen.Schema().NumClasses()

	build := func(seed int64) *nn.Network {
		rng := rand.New(rand.NewSource(seed))
		stack := models.BuildMLP(rng, rand.New(rand.NewSource(seed+1)), f, k)
		return nn.NewNetwork(stack, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005))
	}
	net := build(1)
	rng := rand.New(rand.NewSource(2))
	net.Fit(x.Reshape(x.Dim(0), 1, f), y, nn.FitConfig{
		Epochs: 6, BatchSize: 128, Shuffle: true, RNG: rng,
	})

	// Checkpoint through the filesystem, as a deployment would.
	path := filepath.Join(t.TempDir(), "detector.ckpt")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	loaded := build(999)
	fh, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := loaded.Load(fh); err != nil {
		t.Fatal(err)
	}

	// Serve the loaded model on a stream.
	det := &nids.ModelDetector{ModelName: "mlp", Net: loaded, Pipe: pipe}
	src, err := flow.NewSource(gen, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := nids.New(det, nids.Config{Workers: 4})
	flows := make(chan flow.Flow, 1)

	// Keep a copy of the flows to evaluate offline (source is
	// deterministic: regenerate the same stream).
	go src.Run(context.Background(), flows, 500)
	if err := pl.Run(context.Background(), flows, nil); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Processed != 500 {
		t.Fatalf("processed %d, want 500", st.Processed)
	}

	// Offline evaluation on the identical stream must agree exactly with
	// the pipeline counters.
	src2, err := flow.NewSource(gen, flow.DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, tn, fn int64
	for i := 0; i < 500; i++ {
		fl := src2.Next()
		v := det.Detect(&fl.Record)
		attack := fl.TrueClass != 0
		switch {
		case v.IsAttack && attack:
			tp++
		case v.IsAttack && !attack:
			fp++
		case !v.IsAttack && attack:
			fn++
		default:
			tn++
		}
	}
	if tp != st.TruePos || fp != st.FalseAlarms || fn != st.Missed || tn != st.TrueNeg {
		t.Fatalf("pipeline counters (%d/%d/%d/%d) disagree with offline replay (%d/%d/%d/%d)",
			st.TruePos, st.FalseAlarms, st.Missed, st.TrueNeg, tp, fp, fn, tn)
	}
}

// TestExperimentDeterminism verifies the whole experiment stack is
// bit-reproducible: two runs at the same profile+seed give identical
// summaries.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := experiments.SmokeProfile()
	a, err := experiments.RunFourNets(p, experiments.NSL, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.RunFourNets(p, experiments.NSL, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Evals {
		sa, sb := a.Evals[i].Summary, b.Evals[i].Summary
		if sa != sb {
			t.Fatalf("run %d not deterministic: %+v vs %+v", i, sa, sb)
		}
		for e := range a.Evals[i].Curve.Train {
			if a.Evals[i].Curve.Train[e] != b.Evals[i].Curve.Train[e] {
				t.Fatalf("loss curves diverge at epoch %d", e)
			}
		}
	}
}

// TestCSVRoundTripPreservesTraining verifies a dataset exported to CSV and
// re-imported preprocesses to the identical matrix.
func TestCSVRoundTripPreservesTraining(t *testing.T) {
	gen, err := synth.New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(300, 41)
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := data.ReadCSV(&buf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	x1, y1, _ := data.Preprocess(ds)
	x2, y2, _ := data.Preprocess(ds2)
	if !tensor.ApproxEqual(x1, x2, 1e-12) {
		t.Fatal("preprocessed matrices differ after CSV round trip")
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
}

// TestMetricsAgreeWithNetworkAccuracy cross-checks metrics.Confusion
// against nn.Accuracy on the same predictions.
func TestMetricsAgreeWithNetworkAccuracy(t *testing.T) {
	gen, err := synth.New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(400, 51)
	x, y, _ := data.Preprocess(ds)
	f := gen.Schema().EncodedWidth()
	k := gen.Schema().NumClasses()
	rng := rand.New(rand.NewSource(3))
	net := nn.NewNetwork(
		models.BuildMLP(rng, rand.New(rand.NewSource(4)), f, k),
		nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005))
	x3 := x.Reshape(x.Dim(0), 1, f)
	net.Fit(x3, y, nn.FitConfig{Epochs: 3, BatchSize: 128, Shuffle: true, RNG: rng})

	logits := net.Predict(x3)
	accA := nn.Accuracy(logits, y)
	conf := metrics.NewConfusion(k)
	conf.AddAll(y, logits.ArgmaxRow())
	accB := conf.MulticlassAccuracy()
	if accA != accB {
		t.Fatalf("nn.Accuracy %v != confusion accuracy %v", accA, accB)
	}
}
